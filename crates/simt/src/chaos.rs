//! Chaos scheduling and deterministic fault injection for lock-free race
//! and failure testing.
//!
//! The substrate runs warps on OS threads, so on a many-core host races
//! happen naturally. On a single-core host (CI boxes, laptops in power
//! save), threads only interleave at preemption boundaries — milliseconds
//! apart — and the narrow windows lock-free algorithms care about (between
//! a slab read and the CAS that validates it) would almost never be hit.
//!
//! Chaos mode closes that gap: when enabled, the memory layer yields the
//! OS thread with probability `p` immediately **before each atomic RMW**,
//! maximizing the chance that another warp's operation lands inside the
//! read-then-CAS window. Tests that assert linearizable outcomes under
//! concurrency enable it around their stress loops.
//!
//! Beyond yields, a [`FaultPlan`] can inject *failures*:
//!
//! * **spurious CAS failures** ([`should_fail_cas`]) — consumers treat an
//!   injected failure exactly like losing a real race and take their retry
//!   path, so retry loops and unlink/republish logic get exercised without
//!   real contention;
//! * **forced allocation failures** ([`should_fail_alloc`]) — allocators
//!   surface `AllocError` as if capacity were exhausted, so out-of-memory
//!   recovery paths get exercised on healthy allocators.
//!
//! Draws come from per-thread xorshift32 streams. Each thread's stream is
//! seeded from the plan's `seed` mixed with a per-thread index, so (a)
//! different threads make *different* yield/fault decisions, and (b) a
//! fixed seed on a fixed thread schedule (e.g. `Grid::sequential`)
//! reproduces the exact same decision sequence — failures found in CI
//! replay locally.
//!
//! Plans nest: guards push onto a global stack and the innermost live plan
//! is the active one, so parallel tests (or a test inside a chaotic
//! harness) cannot silently disable each other's chaos by dropping a guard.
//!
//! Disabled (the default), the cost is one relaxed atomic load per hook.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

/// A seeded fault-injection configuration.
///
/// Probabilities are clamped to `[0, 1]`. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability of yielding the OS thread before each atomic RMW.
    pub yield_probability: f64,
    /// Probability that a consumer of [`should_fail_cas`] treats its next
    /// CAS as spuriously failed.
    pub cas_fail_probability: f64,
    /// Probability that a consumer of [`should_fail_alloc`] fails its next
    /// allocation.
    pub alloc_fail_probability: f64,
    /// Base seed for the per-thread decision streams.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            yield_probability: 0.0,
            cas_fail_probability: 0.0,
            alloc_fail_probability: 0.0,
            seed: 0x5EED_CAFE,
        }
    }
}

impl FaultPlan {
    /// A plan with the given base seed and no injection (combine with the
    /// `with_*` builders).
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// A yield-only plan (classic chaos scheduling).
    pub fn yields(p: f64) -> Self {
        Self::default().with_yields(p)
    }

    /// Sets the yield probability.
    pub fn with_yields(mut self, p: f64) -> Self {
        self.yield_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the spurious-CAS-failure probability.
    pub fn with_cas_failures(mut self, p: f64) -> Self {
        self.cas_fail_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the forced-allocation-failure probability.
    pub fn with_alloc_failures(mut self, p: f64) -> Self {
        self.alloc_fail_probability = p.clamp(0.0, 1.0);
        self
    }
}

/// Probability as a u32 threshold (draw `<= level` fires; 0 = disabled).
fn level(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * u32::MAX as f64) as u32
}

// The active plan, denormalized into atomics for the hot path.
static YIELD_LEVEL: AtomicU32 = AtomicU32::new(0);
static CAS_FAIL_LEVEL: AtomicU32 = AtomicU32::new(0);
static ALLOC_FAIL_LEVEL: AtomicU32 = AtomicU32::new(0);
static PLAN_SEED: AtomicU64 = AtomicU64::new(0);
/// Bumped on every plan change; threads reseed their stream when they
/// observe a new epoch.
static PLAN_EPOCH: AtomicU64 = AtomicU64::new(0);

/// The guard stack: (guard id, plan). The innermost (last) entry is active.
static PLAN_STACK: Mutex<Vec<(u64, FaultPlan)>> = Mutex::new(Vec::new());
static NEXT_GUARD_ID: AtomicU64 = AtomicU64::new(1);

fn apply(plan: Option<FaultPlan>) {
    let plan = plan.unwrap_or(FaultPlan {
        seed: 0,
        ..FaultPlan::default()
    });
    YIELD_LEVEL.store(level(plan.yield_probability), Ordering::Relaxed);
    CAS_FAIL_LEVEL.store(level(plan.cas_fail_probability), Ordering::Relaxed);
    ALLOC_FAIL_LEVEL.store(level(plan.alloc_fail_probability), Ordering::Relaxed);
    PLAN_SEED.store(plan.seed, Ordering::Relaxed);
    PLAN_EPOCH.fetch_add(1, Ordering::Relaxed);
}

/// Enables chaos mode: before each atomic RMW, yield the OS thread with
/// probability `p` (clamped to [0, 1]).
///
/// Prefer [`ChaosGuard`] in tests — plain `set_chaos` replaces the *base*
/// state under any active guards and is itself overridden while guards
/// live.
pub fn set_chaos(p: f64) {
    let stack = PLAN_STACK.lock();
    if stack.is_empty() {
        apply(Some(FaultPlan::yields(p)));
    } else {
        // Guards are active; they own the configuration.
        drop(stack);
        apply_top();
    }
}

/// Disables chaos mode (no-op while guards are active; the innermost guard
/// keeps its plan).
pub fn disable_chaos() {
    let stack = PLAN_STACK.lock();
    if stack.is_empty() {
        apply(None);
    }
}

fn apply_top() {
    let stack = PLAN_STACK.lock();
    apply(stack.last().map(|&(_, plan)| plan));
}

/// The currently active plan, if any guard is live.
pub fn active_plan() -> Option<FaultPlan> {
    PLAN_STACK.lock().last().map(|&(_, plan)| plan)
}

/// RAII guard: its [`FaultPlan`] is active while the guard is alive (and
/// no inner guard shadows it); dropping re-activates the next-innermost
/// guard, or disables chaos when none remain.
///
/// Guards nest — including across threads — so parallel tests cannot
/// disable each other's chaos mid-stress-loop; the last surviving guard's
/// plan wins rather than chaos going dark.
///
/// The creating thread is enrolled in *failure* injection for the guard's
/// lifetime (see [`Participation`]); yields stay process-global.
pub struct ChaosGuard {
    id: u64,
    _participation: Participation,
}

impl ChaosGuard {
    /// Enables yield-only chaos at probability `p` for the guard's
    /// lifetime.
    pub fn new(p: f64) -> Self {
        Self::plan(FaultPlan::yields(p))
    }

    /// Activates an arbitrary fault plan for the guard's lifetime.
    pub fn plan(plan: FaultPlan) -> Self {
        let id = NEXT_GUARD_ID.fetch_add(1, Ordering::Relaxed);
        PLAN_STACK.lock().push((id, plan));
        apply_top();
        ChaosGuard {
            id,
            _participation: participate(),
        }
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        let mut stack = PLAN_STACK.lock();
        stack.retain(|&(id, _)| id != self.id);
        drop(stack);
        apply_top();
    }
}

thread_local! {
    /// Nesting count of [`Participation`] enrollments on this thread.
    static PARTICIPATION: Cell<u32> = const { Cell::new(0) };
}

/// RAII enrollment of the current thread in *failure* injection
/// ([`should_fail_cas`] / [`should_fail_alloc`]).
///
/// Failure injection is opt-in per thread — unlike yields, an injected
/// failure changes results, so a plan activated by one test must not fail
/// allocations of unrelated tests running on sibling `cargo test` threads.
/// A [`ChaosGuard`] enrolls its creating thread automatically, and the
/// `Grid` scheduler propagates the launching thread's enrollment to its
/// executor threads, so faults reach exactly the kernels launched under
/// the guard.
pub struct Participation(());

/// Enrolls the current thread in failure injection until the returned
/// guard drops. Nest-safe (counted).
pub fn participate() -> Participation {
    PARTICIPATION.with(|c| c.set(c.get() + 1));
    Participation(())
}

/// [`participate`] iff `enrolled` — for schedulers propagating a parent
/// thread's enrollment into worker threads.
pub fn participate_if(enrolled: bool) -> Option<Participation> {
    enrolled.then(participate)
}

impl Drop for Participation {
    fn drop(&mut self) {
        PARTICIPATION.with(|c| c.set(c.get().saturating_sub(1)));
    }
}

/// True when the current thread is enrolled in failure injection.
pub fn thread_participates() -> bool {
    PARTICIPATION.with(|c| c.get() > 0)
}

static THREAD_COUNTER: AtomicU32 = AtomicU32::new(0);

thread_local! {
    /// Stable per-thread index, mixed into the stream seed so threads
    /// diverge.
    static THREAD_INDEX: u32 = THREAD_COUNTER.fetch_add(1, Ordering::Relaxed);
    /// (epoch this stream was seeded for, xorshift32 state).
    static RNG: Cell<(u64, u32)> = const { Cell::new((0, 0)) };
}

/// 32-bit finalizer (splitmix-style) used for seeding.
fn mix32(mut x: u32) -> u32 {
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^= x >> 16;
    x
}

/// One draw from this thread's decision stream, reseeding when the active
/// plan changed since the last draw.
fn draw() -> u32 {
    let epoch = PLAN_EPOCH.load(Ordering::Relaxed);
    RNG.with(|c| {
        let (seen, state) = c.get();
        let mut x = if seen == epoch && state != 0 {
            state
        } else {
            let seed = PLAN_SEED.load(Ordering::Relaxed);
            let tid = THREAD_INDEX.with(|&t| t);
            // Mix thread index and both seed halves; never zero (xorshift32
            // has a fixed point at 0).
            mix32(seed as u32 ^ mix32((seed >> 32) as u32) ^ mix32(tid.wrapping_mul(0x9e37_79b9)))
                | 1
        };
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        c.set((epoch, x));
        x
    })
}

/// Called by the memory layer (and other lock-free substrates built on this
/// crate) before atomic RMWs. Yields the OS thread with the configured
/// probability; a no-op when chaos is disabled.
#[inline]
pub fn maybe_yield() {
    let level = YIELD_LEVEL.load(Ordering::Relaxed);
    if level == 0 {
        return;
    }
    if draw() <= level {
        std::thread::yield_now();
    }
}

/// Consulted by retry-safe CAS call sites (slot claims, tombstoning):
/// `true` means "treat this attempt as spuriously failed and take the
/// retry path". Always `false` when no plan injects CAS failures or the
/// thread is not [enrolled](Participation).
#[inline]
pub fn should_fail_cas() -> bool {
    let level = CAS_FAIL_LEVEL.load(Ordering::Relaxed);
    level != 0 && thread_participates() && draw() <= level
}

/// Consulted by fallible allocators: `true` means "fail this allocation as
/// if capacity were exhausted". Always `false` when no plan injects
/// allocation failures or the thread is not [enrolled](Participation).
#[inline]
pub fn should_fail_alloc() -> bool {
    let level = ALLOC_FAIL_LEVEL.load(Ordering::Relaxed);
    level != 0 && thread_participates() && draw() <= level
}

#[cfg(test)]
mod tests {
    use super::*;

    // Chaos state is process-global; every test that touches it goes
    // through this lock so `cargo test`'s parallel threads don't observe
    // each other's plans.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_guard_restores() {
        let _l = TEST_LOCK.lock();
        assert_eq!(YIELD_LEVEL.load(Ordering::Relaxed), 0);
        {
            let _g = ChaosGuard::new(0.5);
            assert!(YIELD_LEVEL.load(Ordering::Relaxed) > 0);
            maybe_yield(); // must not panic or hang
        }
        assert_eq!(YIELD_LEVEL.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn full_probability_always_yields_without_deadlock() {
        let _l = TEST_LOCK.lock();
        let _g = ChaosGuard::new(1.0);
        for _ in 0..100 {
            maybe_yield();
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let _l = TEST_LOCK.lock();
        set_chaos(7.5);
        assert_eq!(YIELD_LEVEL.load(Ordering::Relaxed), u32::MAX);
        set_chaos(-1.0);
        assert_eq!(YIELD_LEVEL.load(Ordering::Relaxed), 0);
        disable_chaos();
    }

    #[test]
    fn guards_nest_inner_wins_then_outer_restored() {
        let _l = TEST_LOCK.lock();
        let outer = ChaosGuard::plan(FaultPlan::yields(0.25));
        {
            let _inner = ChaosGuard::plan(FaultPlan::seeded(9).with_cas_failures(1.0));
            assert_eq!(active_plan().unwrap().cas_fail_probability, 1.0);
            assert!(should_fail_cas());
        }
        // Outer guard's plan restored, not chaos-off.
        let plan = active_plan().expect("outer guard still live");
        assert_eq!(plan.yield_probability, 0.25);
        assert!(!should_fail_cas());
        drop(outer);
        assert!(active_plan().is_none());
    }

    #[test]
    fn out_of_order_guard_drops_keep_survivor_active() {
        let _l = TEST_LOCK.lock();
        let a = ChaosGuard::plan(FaultPlan::yields(0.1));
        let b = ChaosGuard::plan(FaultPlan::yields(0.2));
        drop(a); // dropped before the inner guard b
        let plan = active_plan().expect("b still live");
        assert_eq!(plan.yield_probability, 0.2);
        drop(b);
        assert!(active_plan().is_none());
    }

    #[test]
    fn injection_probability_extremes() {
        let _l = TEST_LOCK.lock();
        {
            let _g = ChaosGuard::plan(
                FaultPlan::seeded(1)
                    .with_cas_failures(1.0)
                    .with_alloc_failures(1.0),
            );
            assert!((0..100).all(|_| should_fail_cas()));
            assert!((0..100).all(|_| should_fail_alloc()));
        }
        assert!((0..100).all(|_| !should_fail_cas()));
        assert!((0..100).all(|_| !should_fail_alloc()));
    }

    #[test]
    fn same_seed_same_thread_reproduces_decisions() {
        let _l = TEST_LOCK.lock();
        let run = |seed: u64| -> Vec<bool> {
            let _g = ChaosGuard::plan(FaultPlan::seeded(seed).with_cas_failures(0.5));
            (0..64).map(|_| should_fail_cas()).collect()
        };
        assert_eq!(run(42), run(42), "fixed seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds must diverge");
    }

    #[test]
    fn threads_draw_divergent_streams() {
        let _l = TEST_LOCK.lock();
        let _g = ChaosGuard::plan(FaultPlan::seeded(7).with_cas_failures(0.5));
        let decisions: Vec<Vec<bool>> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let _p = participate();
                        (0..64).map(|_| should_fail_cas()).collect::<Vec<_>>()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // With per-thread seed mixing, 4 threads × 64 draws at p=0.5 all
        // agreeing is ~2⁻¹⁹² — identical streams mean the seed bug is back.
        assert!(
            decisions.windows(2).any(|w| w[0] != w[1]),
            "all threads drew identical decision streams"
        );
    }
}
