//! Chaos scheduling: forced interleavings for lock-free race testing.
//!
//! The substrate runs warps on OS threads, so on a many-core host races
//! happen naturally. On a single-core host (CI boxes, laptops in power
//! save), threads only interleave at preemption boundaries — milliseconds
//! apart — and the narrow windows lock-free algorithms care about (between
//! a slab read and the CAS that validates it) would almost never be hit.
//!
//! Chaos mode closes that gap: when enabled, the memory layer yields the
//! OS thread with probability `p` immediately **before each atomic RMW**,
//! maximizing the chance that another warp's operation lands inside the
//! read-then-CAS window. Tests that assert linearizable outcomes under
//! concurrency enable it around their stress loops.
//!
//! Disabled (the default), the cost is one relaxed atomic load per RMW.

use std::sync::atomic::{AtomicU32, Ordering};

/// Yield probability in units of 1/2^32 (0 = disabled).
static CHAOS_LEVEL: AtomicU32 = AtomicU32::new(0);

/// Enables chaos mode: before each atomic RMW, yield the OS thread with
/// probability `p` (clamped to [0, 1]).
pub fn set_chaos(p: f64) {
    let level = (p.clamp(0.0, 1.0) * u32::MAX as f64) as u32;
    CHAOS_LEVEL.store(level, Ordering::Relaxed);
}

/// Disables chaos mode.
pub fn disable_chaos() {
    CHAOS_LEVEL.store(0, Ordering::Relaxed);
}

/// RAII guard: chaos on while alive, off when dropped.
pub struct ChaosGuard(());

impl ChaosGuard {
    /// Enables chaos at probability `p` for the guard's lifetime.
    pub fn new(p: f64) -> Self {
        set_chaos(p);
        ChaosGuard(())
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        disable_chaos();
    }
}

thread_local! {
    static RNG: std::cell::Cell<u32> = const { std::cell::Cell::new(0x1234_5678) };
}

/// Called by the memory layer (and other lock-free substrates built on this
/// crate) before atomic RMWs. Yields the OS thread with the configured
/// probability; a no-op when chaos is disabled.
#[inline]
pub fn maybe_yield() {
    let level = CHAOS_LEVEL.load(Ordering::Relaxed);
    if level == 0 {
        return;
    }
    let draw = RNG.with(|c| {
        // xorshift32: cheap, per-thread, deterministic enough.
        let mut x = c.get();
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        c.set(x);
        x
    });
    if draw <= level {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_guard_restores() {
        assert_eq!(CHAOS_LEVEL.load(Ordering::Relaxed), 0);
        {
            let _g = ChaosGuard::new(0.5);
            assert!(CHAOS_LEVEL.load(Ordering::Relaxed) > 0);
            maybe_yield(); // must not panic or hang
        }
        assert_eq!(CHAOS_LEVEL.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn full_probability_always_yields_without_deadlock() {
        let _g = ChaosGuard::new(1.0);
        for _ in 0..100 {
            maybe_yield();
        }
    }

    #[test]
    fn clamps_out_of_range() {
        set_chaos(7.5);
        assert_eq!(CHAOS_LEVEL.load(Ordering::Relaxed), u32::MAX);
        set_chaos(-1.0);
        assert_eq!(CHAOS_LEVEL.load(Ordering::Relaxed), 0);
    }
}
