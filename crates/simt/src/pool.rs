//! Persistent executor pool and lock-free warp-chunk dispatch.
//!
//! A GPU never pays thread-creation cost per kernel launch: the SMs are
//! always there, and the hardware scheduler just feeds them blocks. The
//! original [`Grid`](crate::grid::Grid) implementation spawned and joined a
//! fresh set of scoped OS threads for *every* launch, which dominated the
//! host-side cost of small and medium batches. This module supplies the two
//! pieces that remove that overhead:
//!
//! * [`Pool`] — a set of parked worker threads owned by the grid. A launch
//!   wakes them, they execute the launch's executor closure once each, and
//!   they park again when the warp queue drains. The launching thread
//!   participates as an executor itself, so a width-`n` grid keeps `n - 1`
//!   workers.
//! * [`ChunkDispenser`] — hands out disjoint warp-sized `&mut` chunks of the
//!   launch's work items with a single `fetch_add` per warp: no queue
//!   allocation, no lock on the hot path.
//!
//! # Why this module is allowed `unsafe`
//!
//! The rest of the workspace denies `unsafe_code` outright. Persistent
//! workers executing *borrowed* launch closures are the one thing the safe
//! subset cannot express: a worker thread is `'static`, the closure borrows
//! the launch's stack frame. Soundness here rests on a single invariant,
//! enforced by [`Pool::try_run`]:
//!
//! > `try_run` does not return until every executor invocation it started
//! > has finished (observed as `remaining_starts == 0 && active == 0` under
//! > the pool mutex).
//!
//! Because the launching thread blocks inside `try_run` for the whole time
//! any worker can touch the closure, the borrow it erases provably outlives
//! every use. [`ChunkDispenser`] similarly wraps one `fetch_add` index
//! scheme behind an API that can never hand the same chunk out twice.
//! Everything else in the crate builds on these two safe interfaces.
#![allow(unsafe_code)]

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, TryLockError};
use std::thread::JoinHandle;

/// The launch's executor closure with its borrow erased to `'static`.
///
/// Only ever dereferenced by workers between a start claimed from
/// `remaining_starts` and the matching `active` decrement — the window the
/// launcher provably outlives (see the module docs). The `usize` argument is
/// the executing thread's stable slot: 0 for the launching thread, the
/// worker's spawn index (1-based) for pool workers. Sharded dispatch keys
/// shard ownership off this slot, so the same worker drains the same bucket
/// range launch after launch.
type ErasedJob = &'static (dyn Fn(usize) + Sync);

/// Pool state shared between the launcher and the workers, all under one
/// mutex so the completion handshake doubles as the memory barrier that
/// publishes worker-side writes (chunk contents, merged counters) back to
/// the launcher.
struct State {
    /// The current launch's executor closure, present while a launch is in
    /// flight.
    job: Option<ErasedJob>,
    /// Executor invocations not yet claimed by a worker.
    remaining_starts: usize,
    /// Executor invocations claimed and still running.
    active: usize,
    /// First panic that escaped an executor (the launch entry points catch
    /// per-warp panics first, so this is a scheduler bug surfacing, not a
    /// kernel fault).
    panic: Option<Box<dyn std::any::Any + Send + 'static>>,
    /// Set once, on drop: workers exit instead of parking.
    shutdown: bool,
    /// Worker threads still alive. A launch never hands out more starts
    /// than there are live workers to claim them, and the last dying worker
    /// zeroes any starts it strands — so the completion barrier in
    /// [`Pool::try_run`] cannot hang on executors that will never run.
    alive: usize,
    /// Fault-injection hook: each pending request makes one parked worker
    /// exit its loop as if it had died (test builds drive this through
    /// [`Pool::kill_workers`] to prove the barrier survives worker death).
    die_requests: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here; signalled on launch and on shutdown.
    work_ready: Condvar,
    /// The launcher parks here; signalled when the last executor finishes.
    work_done: Condvar,
}

impl Shared {
    /// Locks the state, ignoring poisoning: the state is a plain bookkeeping
    /// record that stays consistent even if a holder panicked (no invariant
    /// spans the lock).
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A persistent, parked worker pool: the grid's standing executor threads.
///
/// Spawned lazily by the grid's first parallel launch and shut down when the
/// last grid clone drops. One launch runs at a time; the grid falls back to
/// scoped threads when the pool is busy (concurrent launches on a shared
/// grid) or re-entered (a kernel launching on its own grid).
pub(crate) struct Pool {
    shared: std::sync::Arc<Shared>,
    /// Serializes launches; `try_lock` failure routes the launch to the
    /// scoped fallback instead of queueing behind the pool.
    launching: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
    /// Launches the pool has run (lifetime total, for the metrics plane).
    launches: std::sync::atomic::AtomicU64,
}

/// A live snapshot of the executor pool for the metrics plane: how many
/// workers are parked and breathing, and how many launches they have run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Executor threads spawned for this pool (fixed at creation).
    pub workers_spawned: usize,
    /// Executor threads currently alive (drops when chaos kills workers).
    pub workers_alive: usize,
    /// Pooled launches run since the pool was created.
    pub launches: u64,
}

impl Pool {
    /// Spawns `workers` parked executor threads.
    pub(crate) fn new(workers: usize) -> Self {
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                remaining_starts: 0,
                active: 0,
                panic: None,
                shutdown: false,
                alive: workers,
                die_requests: 0,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                // Slot 0 is the launching thread; workers get stable slots
                // 1..=N so shard ownership survives across launches.
                let slot = i + 1;
                std::thread::Builder::new()
                    .name(format!("simt-warp-executor-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("spawn warp executor")
            })
            .collect();
        Self {
            shared,
            launching: Mutex::new(()),
            workers,
            launches: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Point-in-time pool statistics (see [`PoolStats`]).
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            workers_spawned: self.workers.len(),
            workers_alive: self.shared.lock().alive,
            launches: self.launches.load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Runs one launch on the pool: wakes up to `extra_executors` workers to
    /// execute `job` once each, runs `job` on the calling thread as well,
    /// and blocks until every started invocation has finished.
    ///
    /// Each invocation receives its executor's stable slot — 0 for the
    /// launching thread, the worker's spawn index for workers — which
    /// sharded dispatch uses as the shard-ownership key.
    ///
    /// Returns `false` without running anything when another launch holds
    /// the pool (the caller then uses its scoped fallback). Re-raises on the
    /// caller any panic that escaped an executor — after all executors have
    /// finished, so the borrow stays valid even on the unwind path.
    pub(crate) fn try_run(&self, extra_executors: usize, job: &(dyn Fn(usize) + Sync)) -> bool {
        let guard = match self.launching.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => return false,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
        };
        // SAFETY: the erased borrow is only dereferenced by workers between
        // claiming a start and decrementing `active`; this function does not
        // return (or unwind) before both counters are back to zero, so the
        // real lifetime of `job` covers every dereference.
        let erased: ErasedJob = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        };
        let starts = {
            let mut st = self.shared.lock();
            debug_assert!(st.job.is_none() && st.remaining_starts == 0 && st.active == 0);
            // Clamp to *live* workers, not spawned workers: a start that no
            // living worker can claim would strand the completion wait.
            let starts = extra_executors.min(st.alive);
            st.job = Some(erased);
            st.remaining_starts = starts;
            starts
        };
        if starts > 0 {
            self.shared.work_ready.notify_all();
        }
        // The launching thread is executor zero. Catch its panic so a
        // buggy executor body cannot unwind past the completion wait.
        let local = catch_unwind(AssertUnwindSafe(|| job(0)));
        let mut st = self.shared.lock();
        while st.remaining_starts > 0 || st.active > 0 {
            st = self
                .shared
                .work_done
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        let worker_panic = st.panic.take();
        drop(st);
        drop(guard);
        if let Err(payload) = local {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        self.launches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        true
    }

    /// Fault-injection hook: makes up to `n` workers exit their loops as if
    /// they had died, then blocks until they are gone. Returns the number of
    /// workers still alive. Robustness tests drive this to prove that
    /// launches keep completing (degraded, launcher-only in the limit) after
    /// worker death instead of hanging the completion barrier.
    pub(crate) fn kill_workers(&self, n: usize) -> usize {
        let target = {
            let mut st = self.shared.lock();
            let n = n.min(st.alive);
            st.die_requests += n;
            st.alive - n
        };
        self.shared.work_ready.notify_all();
        loop {
            let st = self.shared.lock();
            if st.alive <= target {
                return st.alive;
            }
            drop(st);
            std::thread::yield_now();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.lock().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    /// Balances the pool's books however the worker thread exits — orderly
    /// shutdown, a kill request, or an unwind that escapes the per-job
    /// `catch_unwind` (e.g. a panicking payload drop). Without it, a dying
    /// worker would leave `alive` overstated and could strand the launcher
    /// at the completion barrier forever.
    struct Sentinel<'a> {
        shared: &'a Shared,
        /// True between claiming a start and completing its bookkeeping:
        /// the window where dying means an `active` slot leaks.
        claimed: std::cell::Cell<bool>,
    }
    impl Drop for Sentinel<'_> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.alive -= 1;
            if self.claimed.get() {
                st.active -= 1;
                if st.panic.is_none() {
                    st.panic = Some(Box::new("pool worker died mid-job"));
                }
            }
            // Starts no living worker will ever claim must not strand the
            // launcher; the launching thread already ran the job itself.
            if st.alive == 0 {
                st.remaining_starts = 0;
            }
            self.shared.work_done.notify_one();
        }
    }

    let sentinel = Sentinel {
        shared,
        claimed: std::cell::Cell::new(false),
    };
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if st.shutdown {
                    return; // sentinel balances `alive`
                }
                if st.die_requests > 0 {
                    st.die_requests -= 1;
                    return; // injected death; sentinel balances the books
                }
                if st.remaining_starts > 0 {
                    st.remaining_starts -= 1;
                    st.active += 1;
                    sentinel.claimed.set(true);
                    break st.job.expect("job present while starts remain");
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // The module invariant makes this call sound; see `ErasedJob`.
        let outcome = catch_unwind(AssertUnwindSafe(|| job(slot)));
        let mut st = shared.lock();
        sentinel.claimed.set(false);
        if let Err(payload) = outcome {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 && st.remaining_starts == 0 {
            shared.work_done.notify_one();
        }
    }
}

/// Lock-free dispenser of disjoint warp-sized `&mut` chunks.
///
/// Replaces the old `Mutex<vec::IntoIter>` warp queue: claiming a warp is
/// one `fetch_add`, and the chunk's bounds come from offset arithmetic — no
/// per-launch `Vec` of chunks, no lock.
pub(crate) struct ChunkDispenser<'a, T> {
    base: *mut T,
    len: usize,
    chunk: usize,
    next: AtomicUsize,
    _items: PhantomData<&'a mut [T]>,
}

// SAFETY: the only way to reach the underlying elements is `next()`, and the
// internal `fetch_add` is the sole source of chunk indices, so each disjoint
// chunk is handed out at most once — concurrent callers can never obtain
// aliasing `&mut` slices. `T: Send` is required because chunks move to other
// threads.
unsafe impl<T: Send> Sync for ChunkDispenser<'_, T> {}
// SAFETY: same reasoning; the dispenser is just a claim counter over a
// borrowed slice of `Send` elements.
unsafe impl<T: Send> Send for ChunkDispenser<'_, T> {}

impl<'a, T> ChunkDispenser<'a, T> {
    /// Wraps `items` for handout in chunks of at most `chunk` elements.
    pub(crate) fn new(items: &'a mut [T], chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        Self {
            base: items.as_mut_ptr(),
            len: items.len(),
            chunk,
            next: AtomicUsize::new(0),
            _items: PhantomData,
        }
    }

    /// Total chunks this dispenser will hand out (zero for an empty slice).
    pub(crate) fn num_chunks(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    /// Claims the next chunk: its index and the exclusive slice, or `None`
    /// once all chunks are taken.
    pub(crate) fn next(&self) -> Option<(usize, &'a mut [T])> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if id >= self.num_chunks() {
            return None;
        }
        let start = id * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: `start..end` lies inside the borrowed slice, and the
        // fetch_add above guarantees this chunk index — hence this element
        // range — is claimed exactly once, so the returned `&mut` aliases
        // nothing. Lifetime `'a` is the original borrow's.
        let slice = unsafe { std::slice::from_raw_parts_mut(self.base.add(start), end - start) };
        Some((id, slice))
    }
}

/// Sharded counterpart of [`ChunkDispenser`]: hands out disjoint warp-sized
/// `&mut` chunks of per-shard sub-batches, claimed through a
/// [`ShardPlan`](crate::shard::ShardPlan)'s per-shard cursors.
///
/// Where the flat dispenser has one global claim counter (any executor takes
/// the next chunk), the sharded dispenser has one counter *per shard*, and
/// [`drain`](Self::drain) walks them owner-first: an executor exhausts its
/// own shard before stealing from the others. Ownership is what removes
/// cross-worker CAS traffic on hot buckets; stealing is what keeps the
/// launch work-conserving when owners die or shards are imbalanced.
pub(crate) struct ShardDispenser<'a, T> {
    base: *mut T,
    plan: &'a crate::shard::ShardPlan,
    _items: PhantomData<&'a mut [T]>,
}

// SAFETY: chunks are only reachable through `claim`, whose indices come from
// the plan's per-shard `fetch_add` cursors — each (shard, chunk) pair is
// handed out at most once, and distinct pairs map to disjoint element ranges
// because the plan's bounds are monotone and chunks tile each shard's range
// without overlap. `T: Send` because chunks move to other threads.
unsafe impl<T: Send> Sync for ShardDispenser<'_, T> {}
// SAFETY: same reasoning; the dispenser is claim counters over a borrowed
// slice of `Send` elements.
unsafe impl<T: Send> Send for ShardDispenser<'_, T> {}

impl<'a, T> ShardDispenser<'a, T> {
    /// Wraps `items` for sharded handout. `items` must be exactly the
    /// concatenation of the plan's per-shard sub-batches.
    pub(crate) fn new(items: &'a mut [T], plan: &'a crate::shard::ShardPlan) -> Self {
        assert_eq!(
            items.len(),
            plan.total_items(),
            "items must match the shard plan's bounds"
        );
        Self {
            base: items.as_mut_ptr(),
            plan,
            _items: PhantomData,
        }
    }

    /// Claims the next chunk of `shard`: its launch-global warp id and the
    /// exclusive slice, or `None` once the shard is drained.
    pub(crate) fn claim(&self, shard: usize) -> Option<(usize, &'a mut [T])> {
        let (warp_id, start, end) = self.plan.claim(shard)?;
        // SAFETY: `start..end` lies inside the borrowed slice (bounds are
        // validated against `items.len()` in `new`), and the plan's cursor
        // fetch_add guarantees this (shard, chunk) — hence this element
        // range — is claimed exactly once, so the returned `&mut` aliases
        // nothing. Lifetime `'a` is the original borrow's.
        let slice = unsafe { std::slice::from_raw_parts_mut(self.base.add(start), end - start) };
        Some((warp_id, slice))
    }

    /// Runs `f` on chunks until the dispenser is dry or `f` returns `false`:
    /// first every chunk of the executor's own shard (`slot % num_shards`),
    /// then — steal-on-idle — the remaining shards in cyclic order. Every
    /// executor eventually visits every shard, so the launch drains even
    /// when owners are dead (worker death) or absent (fewer executors than
    /// shards).
    pub(crate) fn drain(&self, slot: usize, mut f: impl FnMut(usize, &'a mut [T]) -> bool) {
        let shards = self.plan.num_shards();
        for k in 0..shards {
            let q = (slot + k) % shards;
            while let Some((warp_id, chunk)) = self.claim(q) {
                if !f(warp_id, chunk) {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardPlan;

    #[test]
    fn dispenser_hands_out_every_chunk_once() {
        let mut items: Vec<u32> = (0..100).collect();
        let dispenser = ChunkDispenser::new(&mut items, 32);
        assert_eq!(dispenser.num_chunks(), 4);
        let mut seen = vec![];
        while let Some((id, chunk)) = dispenser.next() {
            seen.push((id, chunk.len()));
            for v in chunk.iter_mut() {
                *v += 1000;
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 32), (1, 32), (2, 32), (3, 4)]);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u32 + 1000));
    }

    #[test]
    fn dispenser_empty_slice_yields_nothing() {
        let mut items: Vec<u32> = vec![];
        let dispenser = ChunkDispenser::new(&mut items, 32);
        assert_eq!(dispenser.num_chunks(), 0);
        assert!(dispenser.next().is_none());
    }

    #[test]
    fn dispenser_handles_zero_sized_items() {
        let mut items = vec![(); 70];
        let dispenser = ChunkDispenser::new(&mut items, 32);
        assert_eq!(dispenser.num_chunks(), 3);
        let mut sizes: Vec<usize> = std::iter::from_fn(|| dispenser.next().map(|c| c.1.len())).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![6, 32, 32]);
    }

    #[test]
    fn dispenser_is_exclusive_across_threads() {
        let mut items = vec![0u64; 64 * 32];
        let dispenser = ChunkDispenser::new(&mut items, 32);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    while let Some((id, chunk)) = dispenser.next() {
                        for v in chunk.iter_mut() {
                            // A datarace here would be caught by the final sum.
                            *v += id as u64 + 1;
                        }
                    }
                });
            }
        });
        let expected: u64 = (1..=64).map(|id| id * 32).sum();
        assert_eq!(items.iter().sum::<u64>(), expected);
    }

    #[test]
    fn shard_dispenser_owner_first_then_steals_everything() {
        let mut items: Vec<u32> = (0..96).collect();
        let mut plan = ShardPlan::new();
        plan.reset(&[0, 32, 64, 96], 16);
        let dispenser = ShardDispenser::new(&mut items, &plan);
        // Executor slot 1 drains its own shard (warps 2, 3 → elements
        // 32..64) before stealing shards 2 and 0 in cyclic order.
        let mut order = vec![];
        dispenser.drain(1, |warp_id, chunk| {
            order.push((warp_id, chunk[0]));
            true
        });
        assert_eq!(
            order,
            vec![(2, 32), (3, 48), (4, 64), (5, 80), (0, 0), (1, 16)]
        );
    }

    #[test]
    fn shard_dispenser_is_exclusive_across_threads() {
        let mut items = vec![0u64; 16 * 32];
        let mut plan = ShardPlan::new();
        plan.reset(&[0, 96, 96, 200, 512], 32);
        {
            let dispenser = &ShardDispenser::new(&mut items, &plan);
            std::thread::scope(|scope| {
                for slot in 0..8 {
                    scope.spawn(move || {
                        dispenser.drain(slot, |warp_id, chunk| {
                            for v in chunk.iter_mut() {
                                // A data race here would be caught by the sum.
                                *v += warp_id as u64 + 1;
                            }
                            true
                        });
                    });
                }
            });
        }
        // Every element visited exactly once, with launch-global warp ids.
        let total: u64 = items.iter().sum();
        let mut expected = 0u64;
        plan.reset(&[0, 96, 96, 200, 512], 32);
        let mut seen = std::collections::HashSet::new();
        for shard in 0..plan.num_shards() {
            while let Some((warp_id, start, end)) = plan.claim(shard) {
                assert!(seen.insert(warp_id), "warp ids must be unique");
                expected += (warp_id as u64 + 1) * (end - start) as u64;
            }
        }
        assert_eq!(total, expected);
    }

    #[test]
    fn pool_passes_stable_executor_slots() {
        let pool = Pool::new(3);
        for _ in 0..20 {
            let seen = Mutex::new(vec![]);
            assert!(pool.try_run(3, &|slot| {
                seen.lock().unwrap().push(slot);
            }));
            let mut slots = seen.into_inner().unwrap();
            slots.sort_unstable();
            // Launcher is slot 0 exactly once; workers report their spawn
            // indices 1..=3 (a fast worker may claim two starts of one
            // launch, so worker slots can repeat — ownership tolerates it).
            assert_eq!(slots.len(), 4);
            assert_eq!(slots.iter().filter(|&&s| s == 0).count(), 1);
            assert!(slots.iter().all(|&s| s <= 3));
        }
    }

    #[test]
    fn pool_runs_job_on_all_executors_and_reuses_workers() {
        let pool = Pool::new(3);
        for _ in 0..50 {
            let hits = AtomicUsize::new(0);
            let job = |_slot: usize| {
                hits.fetch_add(1, Ordering::Relaxed);
            };
            assert!(pool.try_run(3, &job));
            // launcher + 3 workers
            assert_eq!(hits.load(Ordering::Relaxed), 4);
        }
    }

    #[test]
    fn pool_clamps_starts_to_worker_count() {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        let job = |_slot: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        assert!(pool.try_run(100, &job));
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn pool_survives_worker_death_and_keeps_launching() {
        let pool = Pool::new(3);
        let run = |extra: usize| {
            let hits = AtomicUsize::new(0);
            assert!(pool.try_run(extra, &|_slot| {
                hits.fetch_add(1, Ordering::Relaxed);
            }));
            hits.load(Ordering::Relaxed)
        };
        assert_eq!(run(3), 4); // launcher + 3 workers
        // Two workers die: the completion barrier must not wait for them.
        assert_eq!(pool.kill_workers(2), 1);
        assert_eq!(run(3), 2); // launcher + the survivor
        // The last worker dies: launcher-only execution, never a hang.
        assert_eq!(pool.kill_workers(5), 0);
        assert_eq!(run(3), 1);
        assert_eq!(run(0), 1);
    }

    #[test]
    fn pool_contains_panics_even_after_worker_death() {
        let pool = Pool::new(2);
        assert_eq!(pool.kill_workers(1), 1);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.try_run(2, &|_slot| panic!("executor bug"));
        }));
        assert!(caught.is_err());
        let hits = AtomicUsize::new(0);
        assert!(pool.try_run(2, &|_slot| {
            hits.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_forwards_worker_panics_after_completion() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.try_run(2, &|_slot| panic!("executor bug"));
        }));
        assert!(caught.is_err());
        // The pool is intact and reusable after the unwind.
        let hits = AtomicUsize::new(0);
        let job = |_slot: usize| {
            hits.fetch_add(1, Ordering::Relaxed);
        };
        assert!(pool.try_run(2, &job));
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }
}
