//! Performance counters collected during simulated kernel execution.
//!
//! Every memory transaction the algorithms issue is counted with the
//! granularity GPUs bill them at: coalesced 128 B slab reads, scattered 32 B
//! sectors, and atomic RMWs. The counts feed the roofline model
//! ([`crate::model::GpuModel`]) that estimates what the same transaction
//! stream would cost on the paper's Tesla K40c; they are also invaluable in
//! tests (e.g. "an unsuccessful search at β=0.2 touches ~1.2 slabs").

/// Counter block. One instance lives in each [`crate::grid::WarpCtx`] (so
/// incrementing is a plain add on thread-local state) and blocks are merged
/// after a launch completes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PerfCounters {
    /// Warp-coalesced 128-byte slab reads (`ReadSlab()`).
    pub slab_reads: u64,
    /// Scattered 32-byte sector reads (per-thread probes: cuckoo, Misra,
    /// single-lane reads).
    pub sector_reads: u64,
    /// Scattered 32-byte sector writes.
    pub sector_writes: u64,
    /// Atomic compare-and-swap class RMWs (CAS / and / or) — the expensive
    /// class: a failed compare costs a full round-trip and a retry.
    pub atomics: u64,
    /// Atomic exchange/add class RMWs — cheaper on hardware (no compare, no
    /// retry loop); cuckoo hashing's eviction step lives here.
    pub atomic_exchanges: u64,
    /// Iterations of a warp's work-sharing loop (one round = one ballot +
    /// shuffle + branch sequence; proxies instruction-issue cost).
    pub warp_rounds: u64,
    /// Lane-scoped operations retired (inserts, deletes, searches, allocs —
    /// whatever the kernel counts as its unit of work).
    pub ops: u64,
    /// Dynamic slab allocations served.
    pub allocations: u64,
    /// Dynamic slab deallocations.
    pub deallocations: u64,
    /// Allocator resident-block changes (each costs one coalesced bitmap read).
    pub resident_changes: u64,
    /// CAS attempts that failed and were retried (contention measure).
    pub cas_failures: u64,
    /// Divergent per-thread traversal steps (per-thread baselines execute
    /// lanes serially within a warp; each serialized step is billed here).
    pub divergent_steps: u64,
    /// Shared-memory address decodes: the regular SlabAlloc stores each super
    /// block's 64-bit base pointer in shared memory, so every slab resolution
    /// costs one shared-memory lookup; SlabAlloc-light skips it (paper §V).
    pub shared_lookups: u64,
    /// Acquisitions of a device-wide serializing lock (only the CUDA-malloc
    /// baseline allocator uses one; billed at the paper's measured cost).
    pub lock_acquisitions: u64,
    /// Operations that burned through their bounded retry budget and were
    /// failed with `RetryBudgetExhausted` instead of spinning forever
    /// (livelock detector; normally 0).
    pub retry_exhaustions: u64,
    /// Deallocations of a slab that was not currently allocated, detected
    /// and refused by the allocator in all build profiles (normally 0; a
    /// nonzero count means a reclamation bug upstream).
    pub double_frees: u64,
    /// Requests refused by admission control (queue bounds, memory-pressure
    /// write shedding, open circuit breaker) instead of executed. Billed by
    /// the ingress broker, not by kernels.
    pub shed: u64,
    /// Requests that exceeded their deadline budget before completing and
    /// were answered with a timeout error. Billed by the ingress broker.
    pub timed_out: u64,
    /// Circuit-breaker transitions into the open state (each one is a
    /// sustained-failure episode, not a single failed request).
    pub breaker_open: u64,
    /// Coalesced 32-byte reads of a slab's fingerprint-tag vector (the tag
    /// filter's probe: one quarter of a 128 B slab transaction).
    pub tag_reads: u64,
    /// Scattered 32-byte tag-byte publishes (monotone tag CAS on insert and
    /// tag rebuilds during flush).
    pub tag_writes: u64,
    /// Tag probes that produced at least one candidate lane (the filter let
    /// the op touch key lanes). `tag_hits / tag_reads` is the tag hit rate.
    pub tag_hits: u64,
    /// Candidate lanes whose key verification failed — fingerprint
    /// collisions and stale tags of deleted keys. Extra 32 B reads, never
    /// missed keys.
    pub tag_false_positives: u64,
}

impl PerfCounters {
    /// Merges another counter block into this one.
    ///
    /// Implemented by exhaustively destructuring `other`: adding a counter
    /// field without accumulating it here is a compile error, not a
    /// silently-dropped statistic.
    #[inline]
    pub fn merge(&mut self, other: &PerfCounters) {
        let PerfCounters {
            slab_reads,
            sector_reads,
            sector_writes,
            atomics,
            atomic_exchanges,
            warp_rounds,
            ops,
            allocations,
            deallocations,
            resident_changes,
            cas_failures,
            divergent_steps,
            shared_lookups,
            lock_acquisitions,
            retry_exhaustions,
            double_frees,
            shed,
            timed_out,
            breaker_open,
            tag_reads,
            tag_writes,
            tag_hits,
            tag_false_positives,
        } = *other;
        self.slab_reads += slab_reads;
        self.sector_reads += sector_reads;
        self.sector_writes += sector_writes;
        self.atomics += atomics;
        self.atomic_exchanges += atomic_exchanges;
        self.warp_rounds += warp_rounds;
        self.ops += ops;
        self.allocations += allocations;
        self.deallocations += deallocations;
        self.resident_changes += resident_changes;
        self.cas_failures += cas_failures;
        self.divergent_steps += divergent_steps;
        self.shared_lookups += shared_lookups;
        self.lock_acquisitions += lock_acquisitions;
        self.retry_exhaustions += retry_exhaustions;
        self.double_frees += double_frees;
        self.shed += shed;
        self.timed_out += timed_out;
        self.breaker_open += breaker_open;
        self.tag_reads += tag_reads;
        self.tag_writes += tag_writes;
        self.tag_hits += tag_hits;
        self.tag_false_positives += tag_false_positives;
    }

    /// Total bytes moved through the memory system under the transaction
    /// accounting rules in DESIGN.md §1.
    #[inline]
    pub fn bytes_moved(&self) -> u64 {
        self.slab_reads * 128
            + (self.sector_reads
                + self.sector_writes
                + self.atomics
                + self.atomic_exchanges
                + self.tag_reads
                + self.tag_writes)
                * 32
    }

    /// Memory transactions of any size.
    #[inline]
    pub fn transactions(&self) -> u64 {
        self.slab_reads
            + self.sector_reads
            + self.sector_writes
            + self.atomics
            + self.atomic_exchanges
            + self.tag_reads
            + self.tag_writes
    }

    /// Average coalesced slab reads per retired operation.
    pub fn slab_reads_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.slab_reads as f64 / self.ops as f64
        }
    }

    /// Average atomics per retired operation.
    pub fn atomics_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.atomics as f64 / self.ops as f64
        }
    }
}

impl std::ops::Add for PerfCounters {
    type Output = PerfCounters;
    fn add(mut self, rhs: PerfCounters) -> PerfCounters {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for PerfCounters {
    fn sum<I: Iterator<Item = PerfCounters>>(iter: I) -> Self {
        let mut acc = PerfCounters::default();
        for c in iter {
            acc.merge(&c);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let a = PerfCounters {
            slab_reads: 1,
            sector_reads: 2,
            sector_writes: 3,
            atomics: 4,
            atomic_exchanges: 14,
            warp_rounds: 5,
            ops: 6,
            allocations: 7,
            deallocations: 8,
            resident_changes: 9,
            cas_failures: 10,
            divergent_steps: 11,
            shared_lookups: 12,
            lock_acquisitions: 13,
            retry_exhaustions: 15,
            double_frees: 16,
            shed: 17,
            timed_out: 18,
            breaker_open: 19,
            tag_reads: 20,
            tag_writes: 21,
            tag_hits: 22,
            tag_false_positives: 23,
        };
        let doubled = a + a;
        // Exhaustive by construction: both the input literal above and this
        // expected literal name every field (no `..Default::default()`), so
        // adding a counter without extending this test fails to compile,
        // and the whole-struct equality checks every field's merge.
        let expected = PerfCounters {
            slab_reads: 2,
            sector_reads: 4,
            sector_writes: 6,
            atomics: 8,
            atomic_exchanges: 28,
            warp_rounds: 10,
            ops: 12,
            allocations: 14,
            deallocations: 16,
            resident_changes: 18,
            cas_failures: 20,
            divergent_steps: 22,
            shared_lookups: 24,
            lock_acquisitions: 26,
            retry_exhaustions: 30,
            double_frees: 32,
            shed: 34,
            timed_out: 36,
            breaker_open: 38,
            tag_reads: 40,
            tag_writes: 42,
            tag_hits: 44,
            tag_false_positives: 46,
        };
        assert_eq!(doubled, expected);
    }

    #[test]
    fn bytes_moved_accounting() {
        let c = PerfCounters {
            slab_reads: 2,
            sector_reads: 1,
            sector_writes: 1,
            atomics: 1,
            ..Default::default()
        };
        assert_eq!(c.bytes_moved(), 2 * 128 + 3 * 32);
        assert_eq!(c.transactions(), 5);
        let t = PerfCounters {
            tag_reads: 3,
            tag_writes: 2,
            ..Default::default()
        };
        assert_eq!(t.bytes_moved(), 5 * 32);
        assert_eq!(t.transactions(), 5);
    }

    #[test]
    fn per_op_rates_handle_zero_ops() {
        let c = PerfCounters::default();
        assert_eq!(c.slab_reads_per_op(), 0.0);
        let c = PerfCounters {
            ops: 4,
            slab_reads: 6,
            atomics: 2,
            ..Default::default()
        };
        assert!((c.slab_reads_per_op() - 1.5).abs() < 1e-12);
        assert!((c.atomics_per_op() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let blocks = vec![
            PerfCounters {
                ops: 1,
                ..Default::default()
            };
            5
        ];
        let total: PerfCounters = blocks.into_iter().sum();
        assert_eq!(total.ops, 5);
    }
}
