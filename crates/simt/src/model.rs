//! Roofline timing model for the paper's evaluation GPU (Tesla K40c).
//!
//! The simulation counts, exactly, the memory transactions / atomics / warp
//! rounds every algorithm issues ([`PerfCounters`]). This module converts a
//! counter block into an *estimated* execution time on the paper's hardware
//! by treating the GPU as a set of independently saturable resources and
//! charging the transaction stream against each:
//!
//! * **coalesced bandwidth** — 128 B slab transactions against achievable
//!   DRAM bandwidth;
//! * **scattered bandwidth** — 32 B sector transactions against the (much
//!   lower) effective random-access bandwidth;
//! * **atomic throughput** — RMWs against the sustained device-wide atomic
//!   rate;
//! * **issue throughput** — warp-cooperative rounds and divergent per-thread
//!   steps against the aggregate warp-instruction issue rate.
//!
//! The estimate is `max` over the resources (a classic roofline). Two
//! constants (`atomic_rate`, `round_rate`) are calibrated once so the slab
//! hash's best configuration reproduces the paper's peaks (512 M updates/s,
//! 937 M queries/s); every other data point then follows from counted work.
//! `EXPERIMENTS.md` documents the calibration and compares shapes, not
//! absolute numbers.

use crate::counters::PerfCounters;

/// Hardware/calibration parameters for the roofline estimate.
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    /// Display name for reports.
    pub name: &'static str,
    /// Achievable bandwidth for warp-coalesced 128 B transactions (bytes/s).
    /// K40c peak is 288 GB/s; ~85 % is achievable in streaming kernels.
    pub coalesced_bw: f64,
    /// Effective bandwidth for scattered 32 B sector traffic (bytes/s).
    /// Random sector access on Kepler lands far below peak.
    pub scattered_bw: f64,
    /// Device-wide sustained rate for compare-class atomics (64-bit
    /// `atomicCAS`) to distinct addresses, ops/s.
    pub atomic_rate: f64,
    /// Device-wide sustained rate for exchange-class atomics
    /// (`atomicExch`/`atomicAdd`, no compare/retry), ops/s. Measurably
    /// higher than CAS on Kepler — this is what lets cuckoo's bulk build
    /// outrun the slab hash's CAS-based insertion (paper §VI-A's 1.33×).
    pub exchange_rate: f64,
    /// Aggregate rate at which the device retires warp-cooperative rounds
    /// (ballot + shuffle + branch sequences), ops/s.
    pub round_rate: f64,
    /// Rate for serialized divergent per-thread steps (ops/s). Divergent
    /// lanes issue one at a time, so this is roughly `round_rate`.
    pub divergent_rate: f64,
    /// Rate of shared-memory address decodes (ops/s). Shared memory is fast
    /// but the decode sits on every lookup's critical path; calibrated so the
    /// regular SlabAlloc loses up to ~25 % of search throughput to it (§V).
    pub shared_lookup_rate: f64,
    /// Cost of one acquisition of a device-wide serializing heap lock, in
    /// seconds. Taken from the paper's CUDA-malloc measurement (1 M × 128 B
    /// allocations in 1.2 s ⇒ ~1.2 µs per serialized allocation).
    pub lock_cost_s: f64,
    /// L2 cache size in bytes; working sets below this get boosted rates.
    pub l2_bytes: u64,
    /// Multiplier applied to `scattered_bw` and `exchange_rate` when the
    /// working set fits in L2 (fire-and-forget atomics and scattered reads
    /// resolve in L2 on Kepler — "most of the atomic operations can be done
    /// in cache level", §VI-A). Compare-class atomics do *not* benefit:
    /// their read–compare–conditional-write round trip is latency-bound
    /// even when the line is L2-resident.
    pub l2_boost: f64,
}

impl GpuModel {
    /// The paper's evaluation GPU: Tesla K40c (Kepler, ECC off, 12 GB GDDR5,
    /// 288 GB/s peak, 15 SMX @ 745 MHz, 1.5 MB L2).
    pub fn tesla_k40c() -> Self {
        Self {
            name: "Tesla K40c (modeled)",
            coalesced_bw: 245e9,
            scattered_bw: 55e9,
            atomic_rate: 0.55e9,
            exchange_rate: 0.78e9,
            round_rate: 1.0e9,
            divergent_rate: 1.15e9,
            shared_lookup_rate: 3.5e9,
            lock_cost_s: 1.2e-6,
            l2_bytes: 1_536 * 1024,
            l2_boost: 2.5,
        }
    }

    /// The GTX 970 used by the GFSL comparison in §VI-C (224 GB/s).
    pub fn gtx_970() -> Self {
        Self {
            name: "GeForce GTX 970 (modeled)",
            coalesced_bw: 190e9,
            scattered_bw: 62e9,
            atomic_rate: 0.7e9,
            exchange_rate: 0.95e9,
            round_rate: 1.3e9,
            divergent_rate: 1.3e9,
            shared_lookup_rate: 4.0e9,
            lock_cost_s: 1.0e-6,
            l2_bytes: 1_792 * 1024,
            l2_boost: 2.5,
        }
    }

    /// Estimates device time for a counted transaction stream.
    ///
    /// `working_set_bytes` is the size of the memory the kernel touches
    /// repeatedly (the table itself); it selects the L2-resident boost the
    /// way a real cache would.
    pub fn estimate(&self, c: &PerfCounters, working_set_bytes: u64) -> GpuEstimate {
        let in_l2 = working_set_bytes > 0 && working_set_bytes <= self.l2_bytes;
        let boost = if in_l2 { self.l2_boost } else { 1.0 };

        // A tag-vector probe is a 32-byte read on the same coalesced stream
        // as the 128 B slab reads it filters — a quarter-transaction. Tag
        // publishes are scattered single-sector RMW-class stores; billing
        // them with the scattered stream keeps insert costs honest.
        let coalesced_bytes = c.slab_reads as f64 * 128.0 + c.tag_reads as f64 * 32.0;
        let scattered_bytes = (c.sector_reads + c.sector_writes + c.tag_writes) as f64 * 32.0;

        let t_coalesced = coalesced_bytes / self.coalesced_bw;
        let t_scattered = scattered_bytes / (self.scattered_bw * boost);
        let t_atomic = c.atomics as f64 / self.atomic_rate
            + c.atomic_exchanges as f64 / (self.exchange_rate * boost);
        let t_issue =
            c.warp_rounds as f64 / self.round_rate + c.divergent_steps as f64 / self.divergent_rate;
        let t_shared = c.shared_lookups as f64 / self.shared_lookup_rate;
        let t_lock = c.lock_acquisitions as f64 * self.lock_cost_s;

        // The roofline max keeps its historical five components: shared-
        // memory decodes sit on the issue pipeline's critical path, so they
        // fold into "issue" for bounding purposes. The breakdown below
        // splits them back out for attribution.
        let components = [
            ("coalesced-bw", t_coalesced),
            ("scattered-bw", t_scattered),
            ("atomics", t_atomic),
            ("issue", t_issue + t_shared),
            ("serial-lock", t_lock),
        ];
        let (bound, time_s) = components
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();

        GpuEstimate {
            time_s,
            bound,
            ops: c.ops,
            in_l2,
            breakdown: ResourceBreakdown {
                coalesced_s: t_coalesced,
                scattered_s: t_scattered,
                atomic_s: t_atomic,
                issue_s: t_issue,
                shared_s: t_shared,
                lock_s: t_lock,
            },
        }
    }

    /// Convenience: modeled throughput in operations per second.
    pub fn ops_per_sec(&self, c: &PerfCounters, working_set_bytes: u64) -> f64 {
        self.estimate(c, working_set_bytes).mops() * 1e6
    }
}

/// Per-resource time demands behind a roofline estimate.
///
/// Each field is the time the counted transaction stream would need if the
/// named resource were the only constraint. The roofline takes the max;
/// the breakdown keeps all six so reports can attribute *where* the
/// modeled time goes. [`ResourceBreakdown::fractions`] normalizes them to
/// shares of the total demand (summing to 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceBreakdown {
    /// Coalesced 128 B slab traffic vs. streaming bandwidth.
    pub coalesced_s: f64,
    /// Scattered 32 B sector traffic vs. random-access bandwidth.
    pub scattered_s: f64,
    /// Compare- and exchange-class atomics vs. their sustained rates.
    pub atomic_s: f64,
    /// Warp-cooperative rounds and divergent steps vs. issue throughput.
    pub issue_s: f64,
    /// Shared-memory address decodes (billed under "issue" in the roofline
    /// max, split out here).
    pub shared_s: f64,
    /// Serialized device-wide lock acquisitions.
    pub lock_s: f64,
}

impl ResourceBreakdown {
    /// The six `(name, seconds)` components, in fixed report order.
    pub fn times(&self) -> [(&'static str, f64); 6] {
        [
            ("coalesced", self.coalesced_s),
            ("scattered", self.scattered_s),
            ("atomic", self.atomic_s),
            ("issue", self.issue_s),
            ("shared", self.shared_s),
            ("lock", self.lock_s),
        ]
    }

    /// Sum of all per-resource demands (≥ the roofline time, since the
    /// roofline takes the max, not the sum).
    pub fn total_demand(&self) -> f64 {
        self.times().iter().map(|(_, t)| t).sum()
    }

    /// Each resource's share of the total demand, in [`Self::times`] order.
    /// Sums to exactly 1 when any work was counted; all zeros otherwise.
    pub fn fractions(&self) -> [(&'static str, f64); 6] {
        let total = self.total_demand();
        let mut out = self.times();
        for (_, t) in out.iter_mut() {
            *t = if total > 0.0 { *t / total } else { 0.0 };
        }
        out
    }
}

/// Output of [`GpuModel::estimate`].
#[derive(Debug, Clone, Copy)]
pub struct GpuEstimate {
    /// Estimated device time in seconds.
    pub time_s: f64,
    /// Which resource bound the kernel ("coalesced-bw", "scattered-bw",
    /// "atomics" or "issue").
    pub bound: &'static str,
    /// Operations retired, copied from the counters.
    pub ops: u64,
    /// Whether the L2-resident boost applied.
    pub in_l2: bool,
    /// Full per-resource time attribution behind the roofline max.
    pub breakdown: ResourceBreakdown,
}

impl GpuEstimate {
    /// Modeled throughput in millions of operations per second — the unit
    /// every figure in the paper reports.
    pub fn mops(&self) -> f64 {
        if self.time_s <= 0.0 {
            0.0
        } else {
            self.ops as f64 / self.time_s / 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GpuModel {
        GpuModel::tesla_k40c()
    }

    /// Calibration check: a search-like stream (one coalesced slab read and
    /// ~1.05 warp rounds per query, no atomics) must land near the paper's
    /// 937 M queries/s peak.
    #[test]
    fn search_peak_calibration() {
        let n = 1u64 << 22;
        let c = PerfCounters {
            ops: n,
            slab_reads: n + n / 20,
            warp_rounds: n + n / 20,
            ..Default::default()
        };
        // 4M queries over a ~33 MB table: not L2 resident.
        let est = model().estimate(&c, 64 << 20);
        let mops = est.mops();
        assert!(
            (800.0..1200.0).contains(&mops),
            "modeled search peak {mops} M q/s out of range"
        );
    }

    /// Calibration check: an insert-like stream (slab read + one 64-bit CAS
    /// per insert) must land near the paper's 512 M updates/s peak.
    #[test]
    fn insert_peak_calibration() {
        let n = 1u64 << 22;
        let c = PerfCounters {
            ops: n,
            slab_reads: n + n / 10,
            warp_rounds: n + n / 10,
            atomics: n,
            ..Default::default()
        };
        let est = model().estimate(&c, 64 << 20);
        let mops = est.mops();
        assert!(
            (400.0..650.0).contains(&mops),
            "modeled insert peak {mops} M ops/s out of range"
        );
        assert_eq!(est.bound, "atomics");
    }

    #[test]
    fn more_slabs_per_query_is_slower() {
        let n = 1u64 << 20;
        let one_slab = PerfCounters {
            ops: n,
            slab_reads: n,
            warp_rounds: n,
            ..Default::default()
        };
        let two_slabs = PerfCounters {
            ops: n,
            slab_reads: 2 * n,
            warp_rounds: 2 * n,
            ..Default::default()
        };
        let m = model();
        assert!(m.estimate(&one_slab, u64::MAX).time_s < m.estimate(&two_slabs, u64::MAX).time_s);
    }

    #[test]
    fn l2_boost_applies_only_to_small_working_sets() {
        let c = PerfCounters {
            ops: 1 << 20,
            atomic_exchanges: 1 << 20,
            ..Default::default()
        };
        let m = model();
        let small = m.estimate(&c, 256 * 1024);
        let large = m.estimate(&c, 64 << 20);
        assert!(small.in_l2 && !large.in_l2);
        assert!(small.time_s < large.time_s);
    }

    #[test]
    fn cas_class_atomics_do_not_benefit_from_l2() {
        let c = PerfCounters {
            ops: 1 << 20,
            atomics: 1 << 20,
            ..Default::default()
        };
        let m = model();
        let small = m.estimate(&c, 256 * 1024);
        let large = m.estimate(&c, 64 << 20);
        assert_eq!(small.time_s, large.time_s);
    }

    #[test]
    fn exchange_class_is_cheaper_than_cas_class() {
        let n = 1u64 << 20;
        let cas = PerfCounters {
            ops: n,
            atomics: n,
            ..Default::default()
        };
        let exch = PerfCounters {
            ops: n,
            atomic_exchanges: n,
            ..Default::default()
        };
        let m = model();
        assert!(m.estimate(&exch, u64::MAX).time_s < m.estimate(&cas, u64::MAX).time_s);
    }

    #[test]
    fn divergent_steps_dominate_per_thread_traversal() {
        // Misra-style traversal: every lane walks its own chain serially.
        let n = 1u64 << 20;
        let misra = PerfCounters {
            ops: n,
            sector_reads: 3 * n,
            divergent_steps: 3 * n,
            ..Default::default()
        };
        let slab = PerfCounters {
            ops: n,
            slab_reads: n,
            warp_rounds: n,
            ..Default::default()
        };
        let m = model();
        let t_misra = m.estimate(&misra, u64::MAX).time_s;
        let t_slab = m.estimate(&slab, u64::MAX).time_s;
        assert!(
            t_misra > 2.0 * t_slab,
            "per-thread traversal should be much slower: {t_misra} vs {t_slab}"
        );
    }

    #[test]
    fn shared_lookups_tax_issue_bound_searches() {
        // A search stream that is issue-bound: adding one shared-memory
        // decode per query (regular SlabAlloc vs -light) must cost roughly
        // 25 % throughput, the paper's §V observation.
        let n = 1u64 << 22;
        let light = PerfCounters {
            ops: n,
            slab_reads: n,
            warp_rounds: n,
            ..Default::default()
        };
        let regular = PerfCounters {
            shared_lookups: n,
            ..light
        };
        let m = model();
        let t_light = m.estimate(&light, u64::MAX).time_s;
        let t_regular = m.estimate(&regular, u64::MAX).time_s;
        let overhead = t_regular / t_light - 1.0;
        assert!(
            (0.15..0.45).contains(&overhead),
            "shared-lookup overhead {overhead} outside the paper's ~25 % band"
        );
    }

    #[test]
    fn serialized_lock_dominates_malloc_baseline() {
        // 1 M allocations through a device-wide lock ⇒ ~1.2 s (paper's CUDA
        // malloc measurement: 0.8 M slabs/s).
        let c = PerfCounters {
            ops: 1_000_000,
            lock_acquisitions: 1_000_000,
            atomics: 4_000_000,
            ..Default::default()
        };
        let est = model().estimate(&c, u64::MAX);
        assert_eq!(est.bound, "serial-lock");
        let mops = est.mops();
        assert!(
            (0.5..1.2).contains(&mops),
            "modeled CUDA-malloc rate {mops} M/s should be ~0.8 M/s"
        );
    }

    #[test]
    fn zero_counters_zero_time() {
        let est = model().estimate(&PerfCounters::default(), 0);
        assert_eq!(est.time_s, 0.0);
        assert_eq!(est.mops(), 0.0);
        assert_eq!(est.breakdown.total_demand(), 0.0);
        assert!(est.breakdown.fractions().iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn breakdown_fractions_sum_to_one_and_rank_sensibly() {
        let n = 1u64 << 22;
        let c = PerfCounters {
            ops: n,
            slab_reads: n,
            warp_rounds: n,
            atomics: n,
            shared_lookups: n,
            ..Default::default()
        };
        let est = model().estimate(&c, 64 << 20);
        let fractions = est.breakdown.fractions();
        let sum: f64 = fractions.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12, "fractions sum to {sum}");
        let get = |name: &str| {
            fractions
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, f)| f)
                .unwrap()
        };
        // CAS atomics are the slowest resource in this stream.
        assert!(get("atomic") > get("issue"));
        assert!(get("atomic") > get("coalesced"));
        assert!(get("shared") > 0.0 && get("scattered") == 0.0 && get("lock") == 0.0);
    }

    #[test]
    fn breakdown_is_consistent_with_roofline_max() {
        let n = 1u64 << 20;
        let c = PerfCounters {
            ops: n,
            slab_reads: n,
            warp_rounds: n,
            shared_lookups: n,
            atomics: n / 4,
            ..Default::default()
        };
        let est = model().estimate(&c, u64::MAX);
        let b = est.breakdown;
        // The roofline time is the max over the five bounding components,
        // with shared folded into issue.
        let bounding = [
            b.coalesced_s,
            b.scattered_s,
            b.atomic_s,
            b.issue_s + b.shared_s,
            b.lock_s,
        ];
        let max = bounding.iter().copied().fold(0.0f64, f64::max);
        assert!((est.time_s - max).abs() < 1e-18);
        assert!(b.total_demand() >= est.time_s);
    }
}
