//! Warp-wide intrinsics over lockstep lane state.
//!
//! On NVIDIA hardware a *warp* is a SIMD group of 32 threads executing in
//! lockstep; warp-wide instructions (`__ballot`, `__shfl`, `__ffs`,
//! `__match_any`) let the lanes communicate without going through memory.
//! The slab hash's warp-cooperative work sharing strategy (paper §IV-A) is
//! built entirely on these primitives, so we model them exactly: a warp's
//! per-lane state is a `[T; 32]` array and each intrinsic is a pure
//! horizontal function over it.
//!
//! ## Two implementations, one contract
//!
//! Every horizontal primitive exists twice:
//!
//! * [`scalar`] — the reference oracle: a literal 32-iteration branchy lane
//!   loop, kept deliberately naive. This is the line-for-line transcription
//!   of the paper's pseudocode and the ground truth the property tests pin
//!   the fast path against.
//! * [`wide`] — branchless u64/u32 bitmask arithmetic (SWAR byte tricks,
//!   wide-compare loops the optimizer lowers to packed vector compares), so
//!   a simulated warp round — ballot, eq-ballot, ffs, match-any — costs a
//!   handful of host instructions instead of 32 branchy iterations.
//!
//! The public wrappers at module root select the implementation via the
//! `wide` cargo feature (default on; disable for the scalar fallback). Both
//! modules are always compiled, so a single binary can microbenchmark one
//! against the other (`crates/bench/benches/warp.rs`, `perf single-op`).

/// SIMD width of the simulated machine. Fixed at 32 to match every NVIDIA
/// architecture the paper targets (Kepler through today).
pub const WARP_SIZE: usize = 32;

/// A full warp mask: every lane's ballot bit set.
pub const FULL_MASK: u32 = u32::MAX;

/// Lane index within a warp (0..32). A thin newtype so signatures make it
/// obvious which `u32`s are lane ids rather than data.
pub type Lane = usize;

/// Reference oracle implementations: literal per-lane loops with branches,
/// exactly as the paper's pseudocode reads. Slow on purpose — the property
/// tests prove [`wide`] bit-identical to these, and the warp microbench
/// measures the gap.
pub mod scalar {
    use super::{Lane, WARP_SIZE};

    /// `__ballot_sync` oracle: one branchy iteration per lane.
    #[inline]
    pub fn ballot<T: Copy>(lanes: &[T; WARP_SIZE], mut pred: impl FnMut(T) -> bool) -> u32 {
        let mut mask = 0u32;
        for (i, &lane) in lanes.iter().enumerate() {
            if pred(lane) {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// Equality-ballot oracle: 32 branchy compares.
    #[inline]
    pub fn ballot_eq(values: &[u32; WARP_SIZE], target: u32) -> u32 {
        let mut mask = 0u32;
        for (i, &v) in values.iter().enumerate() {
            if v == target {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// `__ffs` oracle: walk the mask bit by bit from lane 0.
    #[inline]
    pub fn ffs(mask: u32) -> Option<Lane> {
        (0..WARP_SIZE).find(|&i| mask & (1 << i) != 0)
    }

    /// `__match_any_sync` oracle: for every lane, the mask of lanes holding
    /// the same value — 32 × 32 branchy compares.
    #[inline]
    pub fn match_any(values: &[u32; WARP_SIZE]) -> [u32; WARP_SIZE] {
        let mut out = [0u32; WARP_SIZE];
        for i in 0..WARP_SIZE {
            for (j, &v) in values.iter().enumerate() {
                if v == values[i] {
                    out[i] |= 1 << j;
                }
            }
        }
        out
    }

    /// Byte-equality scan oracle over a 32-byte tag vector packed
    /// little-endian into four u64 words: bit *i* of the result is set iff
    /// byte *i* equals `needle`. 32 branchy shift-and-mask iterations.
    #[inline]
    pub fn byte_eq_mask(words: &[u64; 4], needle: u8) -> u32 {
        let mut mask = 0u32;
        for (w, &word) in words.iter().enumerate() {
            for b in 0..8 {
                if ((word >> (8 * b)) & 0xFF) as u8 == needle {
                    mask |= 1 << (8 * w + b);
                }
            }
        }
        mask
    }
}

/// Branchless bitmask implementations: fixed-shape compare chains the
/// optimizer lowers to packed vector compares plus movemask, and SWAR
/// (SIMD-within-a-register) byte arithmetic on u64 words. Bit-identical to
/// [`scalar`] (see the property tests below); selected by the default
/// `wide` cargo feature.
pub mod wide {
    use super::{Lane, WARP_SIZE};

    /// `__ballot_sync`: the predicate is evaluated branchlessly into bit
    /// *i*, an or-reduction with no data-dependent branches, so the whole
    /// ballot flattens into straight-line code (vectorized when `pred` is
    /// a pure compare).
    #[inline(always)]
    pub fn ballot<T: Copy>(lanes: &[T; WARP_SIZE], mut pred: impl FnMut(T) -> bool) -> u32 {
        let mut mask = 0u32;
        for (i, &lane) in lanes.iter().enumerate() {
            mask |= u32::from(pred(lane)) << i;
        }
        mask
    }

    /// Equality-ballot as a branchless wide compare: 32 independent
    /// `v == target` bits or-folded by position — the optimizer emits four
    /// 8-wide packed compares + movemask instead of a 32-iteration branchy
    /// loop.
    #[inline(always)]
    pub fn ballot_eq(values: &[u32; WARP_SIZE], target: u32) -> u32 {
        let mut mask = 0u32;
        for (i, &v) in values.iter().enumerate() {
            mask |= u32::from(v == target) << i;
        }
        mask
    }

    /// `__ffs` as a single count-trailing-zeros instruction.
    #[inline(always)]
    pub fn ffs(mask: u32) -> Option<Lane> {
        if mask == 0 {
            None
        } else {
            Some(mask.trailing_zeros() as Lane)
        }
    }

    /// `__match_any_sync`: one wide equality-ballot per lane. Still 32
    /// ballots, but each is a packed compare, not 32 branches — the oracle
    /// is 1024 branchy compares.
    #[inline(always)]
    pub fn match_any(values: &[u32; WARP_SIZE]) -> [u32; WARP_SIZE] {
        let mut out = [0u32; WARP_SIZE];
        for (i, &v) in values.iter().enumerate() {
            out[i] = ballot_eq(values, v);
        }
        out
    }

    const LO7: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    const ONES: u64 = 0x0101_0101_0101_0101;
    /// Packs the high bit of each byte (positions 7, 15, …, 63) into bits
    /// 0..8. Every partial product lands on a distinct bit, so the multiply
    /// is carry-free.
    const HI_GATHER: u64 = 0x0002_0408_1020_4081;

    /// Byte-equality scan over a 32-byte tag vector: 8 bytes per u64 word
    /// via exact SWAR zero-byte location (no false positives — a byte
    /// matches iff its ballot bit is set). Four words → 12 arithmetic ops
    /// per word instead of 32 shift-compare-branch iterations.
    #[inline(always)]
    pub fn byte_eq_mask(words: &[u64; 4], needle: u8) -> u32 {
        let splat = u64::from(needle).wrapping_mul(ONES);
        let mut mask = 0u32;
        for (w, &word) in words.iter().enumerate() {
            let x = word ^ splat; // byte == 0 ⇔ byte matched needle
            // Exact zero-byte locator: high bit of z set iff the byte of x
            // is zero. (The classic `(x - 0x01…) & !x & 0x80…` locator has
            // per-byte false positives above a zero byte; this form does
            // not.)
            let y = (x & LO7).wrapping_add(LO7);
            let z = !(y | x | LO7);
            let bits = (z.wrapping_mul(HI_GATHER) >> 56) as u32;
            mask |= bits << (8 * w);
        }
        mask
    }
}

/// `__ballot_sync`: returns a 32-bit mask with bit *i* set iff `pred(lane_i)`
/// is true. All lanes receive the same value (we return it once; the caller
/// is lockstep by construction). The predicate takes its lane by value
/// (`T: Copy`) so the branchless path needs no reference indirection.
#[inline(always)]
pub fn ballot<T: Copy>(lanes: &[T; WARP_SIZE], pred: impl FnMut(T) -> bool) -> u32 {
    #[cfg(feature = "wide")]
    return wide::ballot(lanes, pred);
    #[cfg(not(feature = "wide"))]
    return scalar::ballot(lanes, pred);
}

/// `__ballot_sync` over a plain array of lane values compared for equality.
#[inline(always)]
pub fn ballot_eq(values: &[u32; WARP_SIZE], target: u32) -> u32 {
    #[cfg(feature = "wide")]
    return wide::ballot_eq(values, target);
    #[cfg(not(feature = "wide"))]
    return scalar::ballot_eq(values, target);
}

/// `__match_any_sync`: for every lane *i*, the mask of lanes whose value
/// equals `values[i]` (each lane's own bit always set).
#[inline(always)]
pub fn match_any(values: &[u32; WARP_SIZE]) -> [u32; WARP_SIZE] {
    #[cfg(feature = "wide")]
    return wide::match_any(values);
    #[cfg(not(feature = "wide"))]
    return scalar::match_any(values);
}

/// Byte-equality scan over a 32-byte vector (four little-endian u64 words):
/// bit *i* of the result is set iff byte *i* equals `needle`. This is the
/// tag-filter primitive: one call scans a slab's whole fingerprint region.
#[inline(always)]
pub fn byte_eq_mask(words: &[u64; 4], needle: u8) -> u32 {
    #[cfg(feature = "wide")]
    return wide::byte_eq_mask(words, needle);
    #[cfg(not(feature = "wide"))]
    return scalar::byte_eq_mask(words, needle);
}

/// `__shfl_sync(v, src_lane)`: every lane reads lane `src`'s value. In the
/// scalarized model that is a single indexed read.
#[inline(always)]
pub fn shfl<T: Copy>(lanes: &[T; WARP_SIZE], src: Lane) -> T {
    debug_assert!(src < WARP_SIZE, "shuffle source lane out of range");
    lanes[src]
}

/// CUDA `__ffs(mask) - 1` adjusted to return the first set bit as a lane
/// index, or `None` when the mask is empty. The paper uses `__ffs` both as
/// `next_prior()` (pick the next queued operation) and to locate the found /
/// destination lane in a ballot result.
#[inline(always)]
pub fn ffs(mask: u32) -> Option<Lane> {
    #[cfg(feature = "wide")]
    return wide::ffs(mask);
    #[cfg(not(feature = "wide"))]
    return scalar::ffs(mask);
}

/// Number of lanes whose ballot bit is set.
#[inline(always)]
pub fn popc(mask: u32) -> u32 {
    mask.count_ones()
}

/// Mask with bits `[0, n)` set — e.g. the paper's `VALID_KEY_MASK` builders.
#[inline(always)]
pub fn lanes_below(n: usize) -> u32 {
    debug_assert!(n <= WARP_SIZE);
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Mask of the even lanes among the first `n` lanes (key lanes in the
/// key-value layout, where even lanes hold keys and odd lanes values).
#[inline(always)]
pub fn even_lanes_below(n: usize) -> u32 {
    lanes_below(n) & 0x5555_5555
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_sets_expected_bits() {
        let mut lanes = [0u32; WARP_SIZE];
        lanes[0] = 7;
        lanes[5] = 7;
        lanes[31] = 7;
        let mask = ballot(&lanes, |v| v == 7);
        assert_eq!(mask, (1 << 0) | (1 << 5) | (1u32 << 31));
    }

    #[test]
    fn ballot_empty_and_full() {
        let lanes = [1u32; WARP_SIZE];
        assert_eq!(ballot(&lanes, |v| v == 0), 0);
        assert_eq!(ballot(&lanes, |v| v == 1), FULL_MASK);
    }

    #[test]
    fn ballot_eq_matches_closure_ballot() {
        let mut lanes = [0u32; WARP_SIZE];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = (i % 3) as u32;
        }
        assert_eq!(ballot_eq(&lanes, 2), ballot(&lanes, |v| v == 2));
    }

    #[test]
    fn shfl_broadcasts_source_lane() {
        let mut lanes = [0u64; WARP_SIZE];
        lanes[17] = 0xdead_beef;
        assert_eq!(shfl(&lanes, 17), 0xdead_beef);
        assert_eq!(shfl(&lanes, 0), 0);
    }

    #[test]
    fn ffs_finds_lowest_lane() {
        assert_eq!(ffs(0), None);
        assert_eq!(ffs(0b1000), Some(3));
        assert_eq!(ffs(FULL_MASK), Some(0));
        assert_eq!(ffs(1 << 31), Some(31));
    }

    #[test]
    fn ffs_is_priority_order_for_work_queue() {
        // next_prior() semantics: repeatedly clearing the returned bit walks
        // the work queue from lane 0 upward.
        let mut queue = 0b1010_0100u32;
        let mut order = vec![];
        while let Some(lane) = ffs(queue) {
            order.push(lane);
            queue &= !(1 << lane);
        }
        assert_eq!(order, vec![2, 5, 7]);
    }

    #[test]
    fn lane_masks() {
        assert_eq!(lanes_below(0), 0);
        assert_eq!(lanes_below(30), 0x3FFF_FFFF);
        assert_eq!(lanes_below(32), u32::MAX);
        // Even lanes 0,2,..,28 among the first 30.
        assert_eq!(even_lanes_below(30), 0x1555_5555);
        assert_eq!(popc(even_lanes_below(30)), 15);
    }

    #[test]
    fn match_any_groups_equal_lanes() {
        let mut lanes = [0u32; WARP_SIZE];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = (i % 4) as u32;
        }
        let groups = match_any(&lanes);
        for (i, &g) in groups.iter().enumerate() {
            assert_ne!(g & (1 << i), 0, "own bit always set");
            assert_eq!(g, ballot_eq(&lanes, lanes[i]));
        }
    }

    #[test]
    fn byte_eq_mask_finds_exact_bytes() {
        let mut words = [0u64; 4];
        words[0] = 0x0000_0000_0000_00AB; // byte 0
        words[1] = 0x00AB_0000_0000_0000; // byte 8+6=14
        words[3] = 0xAB00_0000_0000_0000; // byte 24+7=31
        let mask = byte_eq_mask(&words, 0xAB);
        assert_eq!(mask, (1 << 0) | (1 << 14) | (1u32 << 31));
        // needle 0 matches every remaining zero byte
        assert_eq!(byte_eq_mask(&words, 0), !mask);
    }

    // ---- property tests: wide ≡ scalar, bit for bit -------------------

    /// Key-lane masks the ops layer applies to every ballot result: the
    /// key-value layout (even lanes 0..30), the key-only layout (lanes
    /// 0..30), and the degenerate edges.
    const KEY_LANE_MASKS: [u32; 4] = [0x1555_5555, 0x3FFF_FFFF, 0, FULL_MASK];

    /// Small deterministic PRNG (splitmix64) so the property tests need no
    /// external crates and replay identically.
    struct Mix(u64);
    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn lanes(&mut self, spread: u32) -> [u32; WARP_SIZE] {
            let mut out = [0u32; WARP_SIZE];
            for v in out.iter_mut() {
                *v = (self.next() as u32) % spread.max(1);
            }
            out
        }
    }

    #[test]
    fn ffs_wide_matches_scalar_exhaustively_near_edges() {
        // All 16-bit masks in the low half, plus every single bit and a
        // random sample of full-width masks.
        for m in 0u32..=0xFFFF {
            assert_eq!(wide::ffs(m), scalar::ffs(m), "mask {m:#x}");
        }
        for b in 0..32 {
            let m = 1u32 << b;
            assert_eq!(wide::ffs(m), scalar::ffs(m));
            assert_eq!(wide::ffs(m | 0x8000_0000), scalar::ffs(m | 0x8000_0000));
        }
        let mut rng = Mix(7);
        for _ in 0..10_000 {
            let m = rng.next() as u32;
            assert_eq!(wide::ffs(m), scalar::ffs(m), "mask {m:#x}");
        }
    }

    #[test]
    fn ballot_eq_wide_matches_scalar_on_seeded_lanes() {
        let mut rng = Mix(0x5eed);
        for spread in [1, 2, 3, 8, 1 << 16, u32::MAX] {
            for _ in 0..2_000 {
                let lanes = rng.lanes(spread);
                let target = (rng.next() as u32) % spread.max(1);
                let w = wide::ballot_eq(&lanes, target);
                let s = scalar::ballot_eq(&lanes, target);
                assert_eq!(w, s, "lanes {lanes:?} target {target}");
                for km in KEY_LANE_MASKS {
                    assert_eq!(w & km, s & km);
                }
            }
        }
    }

    #[test]
    fn ballot_wide_matches_scalar_on_predicates() {
        let mut rng = Mix(0xB411);
        for _ in 0..2_000 {
            let lanes = rng.lanes(16);
            let t = (rng.next() as u32) % 16;
            assert_eq!(
                wide::ballot(&lanes, |v| v == t),
                scalar::ballot(&lanes, |v| v == t)
            );
            assert_eq!(
                wide::ballot(&lanes, |v| v > t),
                scalar::ballot(&lanes, |v| v > t)
            );
            let bools: [bool; WARP_SIZE] = core::array::from_fn(|i| lanes[i] & 1 == 0);
            assert_eq!(wide::ballot(&bools, |b| b), scalar::ballot(&bools, |b| b));
        }
    }

    #[test]
    fn match_any_wide_matches_scalar() {
        let mut rng = Mix(0xACE);
        for spread in [1, 2, 5, 33, 1 << 20] {
            for _ in 0..500 {
                let lanes = rng.lanes(spread);
                assert_eq!(wide::match_any(&lanes), scalar::match_any(&lanes));
            }
        }
    }

    #[test]
    fn byte_eq_mask_wide_matches_scalar_exhaustive_needles() {
        // Every needle against structured words that exercise the SWAR
        // locator's carry edges: bytes 0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF
        // adjacent to matches (the classic haszero trick mislocates 0x01
        // above a zero byte; this proves ours does not).
        let edgy: [u64; 4] = [
            0x0001_7F80_FEFF_0001,
            0xFF00_FF00_0100_01FF,
            0x8080_8080_7F7F_7F7F,
            0x0000_0000_FFFF_FFFF,
        ];
        for needle in 0..=255u8 {
            assert_eq!(
                wide::byte_eq_mask(&edgy, needle),
                scalar::byte_eq_mask(&edgy, needle),
                "needle {needle:#x}"
            );
        }
        let mut rng = Mix(0x7A65);
        for _ in 0..5_000 {
            let words = [rng.next(), rng.next(), rng.next(), rng.next()];
            let needle = rng.next() as u8;
            assert_eq!(
                wide::byte_eq_mask(&words, needle),
                scalar::byte_eq_mask(&words, needle),
                "words {words:?} needle {needle:#x}"
            );
        }
    }

    #[test]
    fn public_wrappers_agree_with_both_implementations() {
        // Whatever the feature selection, the wrapper must equal the oracle.
        let mut rng = Mix(42);
        for _ in 0..1_000 {
            let lanes = rng.lanes(6);
            let t = (rng.next() as u32) % 6;
            assert_eq!(ballot_eq(&lanes, t), scalar::ballot_eq(&lanes, t));
            assert_eq!(ballot(&lanes, |v| v != t), scalar::ballot(&lanes, |v| v != t));
            assert_eq!(match_any(&lanes), scalar::match_any(&lanes));
            let words = [rng.next(), rng.next(), rng.next(), rng.next()];
            let needle = rng.next() as u8;
            assert_eq!(byte_eq_mask(&words, needle), scalar::byte_eq_mask(&words, needle));
            let m = rng.next() as u32;
            assert_eq!(ffs(m), scalar::ffs(m));
        }
    }
}
