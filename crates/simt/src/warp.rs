//! Warp-wide intrinsics over lockstep lane state.
//!
//! On NVIDIA hardware a *warp* is a SIMD group of 32 threads executing in
//! lockstep; warp-wide instructions (`__ballot`, `__shfl`, `__ffs`) let the
//! lanes communicate without going through memory. The slab hash's
//! warp-cooperative work sharing strategy (paper §IV-A) is built entirely on
//! these three primitives, so we model them exactly: a warp's per-lane state
//! is a `[T; 32]` array and each intrinsic is a pure horizontal function over
//! it. This keeps the ported pseudocode (paper Fig. 2) line-for-line
//! recognizable and lets the intrinsics be unit-tested in isolation.

/// SIMD width of the simulated machine. Fixed at 32 to match every NVIDIA
/// architecture the paper targets (Kepler through today).
pub const WARP_SIZE: usize = 32;

/// A full warp mask: every lane's ballot bit set.
pub const FULL_MASK: u32 = u32::MAX;

/// Lane index within a warp (0..32). A thin newtype so signatures make it
/// obvious which `u32`s are lane ids rather than data.
pub type Lane = usize;

/// `__ballot_sync`: returns a 32-bit mask with bit *i* set iff `pred(lane_i)`
/// is true. All lanes receive the same value (we return it once; the caller
/// is lockstep by construction).
#[inline]
pub fn ballot<T>(lanes: &[T; WARP_SIZE], mut pred: impl FnMut(&T) -> bool) -> u32 {
    let mut mask = 0u32;
    for (i, lane) in lanes.iter().enumerate() {
        if pred(lane) {
            mask |= 1 << i;
        }
    }
    mask
}

/// `__ballot_sync` over a plain array of lane values compared for equality.
#[inline]
pub fn ballot_eq(values: &[u32; WARP_SIZE], target: u32) -> u32 {
    let mut mask = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if v == target {
            mask |= 1 << i;
        }
    }
    mask
}

/// `__shfl_sync(v, src_lane)`: every lane reads lane `src`'s value. In the
/// scalarized model that is a single indexed read.
#[inline]
pub fn shfl<T: Copy>(lanes: &[T; WARP_SIZE], src: Lane) -> T {
    debug_assert!(src < WARP_SIZE, "shuffle source lane out of range");
    lanes[src]
}

/// CUDA `__ffs(mask) - 1` adjusted to return the first set bit as a lane
/// index, or `None` when the mask is empty. The paper uses `__ffs` both as
/// `next_prior()` (pick the next queued operation) and to locate the found /
/// destination lane in a ballot result.
#[inline]
pub fn ffs(mask: u32) -> Option<Lane> {
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as Lane)
    }
}

/// Number of lanes whose ballot bit is set.
#[inline]
pub fn popc(mask: u32) -> u32 {
    mask.count_ones()
}

/// Mask with bits `[0, n)` set — e.g. the paper's `VALID_KEY_MASK` builders.
#[inline]
pub fn lanes_below(n: usize) -> u32 {
    debug_assert!(n <= WARP_SIZE);
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// Mask of the even lanes among the first `n` lanes (key lanes in the
/// key-value layout, where even lanes hold keys and odd lanes values).
#[inline]
pub fn even_lanes_below(n: usize) -> u32 {
    lanes_below(n) & 0x5555_5555
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_sets_expected_bits() {
        let mut lanes = [0u32; WARP_SIZE];
        lanes[0] = 7;
        lanes[5] = 7;
        lanes[31] = 7;
        let mask = ballot(&lanes, |&v| v == 7);
        assert_eq!(mask, (1 << 0) | (1 << 5) | (1u32 << 31));
    }

    #[test]
    fn ballot_empty_and_full() {
        let lanes = [1u32; WARP_SIZE];
        assert_eq!(ballot(&lanes, |&v| v == 0), 0);
        assert_eq!(ballot(&lanes, |&v| v == 1), FULL_MASK);
    }

    #[test]
    fn ballot_eq_matches_closure_ballot() {
        let mut lanes = [0u32; WARP_SIZE];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = (i % 3) as u32;
        }
        assert_eq!(ballot_eq(&lanes, 2), ballot(&lanes, |&v| v == 2));
    }

    #[test]
    fn shfl_broadcasts_source_lane() {
        let mut lanes = [0u64; WARP_SIZE];
        lanes[17] = 0xdead_beef;
        assert_eq!(shfl(&lanes, 17), 0xdead_beef);
        assert_eq!(shfl(&lanes, 0), 0);
    }

    #[test]
    fn ffs_finds_lowest_lane() {
        assert_eq!(ffs(0), None);
        assert_eq!(ffs(0b1000), Some(3));
        assert_eq!(ffs(FULL_MASK), Some(0));
        assert_eq!(ffs(1 << 31), Some(31));
    }

    #[test]
    fn ffs_is_priority_order_for_work_queue() {
        // next_prior() semantics: repeatedly clearing the returned bit walks
        // the work queue from lane 0 upward.
        let mut queue = 0b1010_0100u32;
        let mut order = vec![];
        while let Some(lane) = ffs(queue) {
            order.push(lane);
            queue &= !(1 << lane);
        }
        assert_eq!(order, vec![2, 5, 7]);
    }

    #[test]
    fn lane_masks() {
        assert_eq!(lanes_below(0), 0);
        assert_eq!(lanes_below(30), 0x3FFF_FFFF);
        assert_eq!(lanes_below(32), u32::MAX);
        // Even lanes 0,2,..,28 among the first 30.
        assert_eq!(even_lanes_below(30), 0x1555_5555);
        assert_eq!(popc(even_lanes_below(30)), 15);
    }
}
