//! Epoch-based grace periods for deferred reclamation.
//!
//! Concurrent compaction unlinks slabs from live chains while other warps
//! may still be traversing them. The unlinked slab cannot be scrubbed and
//! returned to the allocator immediately: a racing reader that loaded the
//! predecessor's next-pointer *before* the unlink may still dereference it.
//! The classic answer is epoch-based reclamation, and the GPU analogue is
//! per-launch quiescence: a kernel launch pins the epoch it started in, and
//! memory retired at epoch `t` is reclaimable only once every pinned launch
//! started at an epoch ≥ `t` (it then provably started *after* the unlink
//! and can never have read the stale pointer).
//!
//! [`EpochClock`] is that clock: launches take an [`EpochPin`] (RAII) for
//! their duration, retirers tag retired memory with [`EpochClock::advance`]
//! *after* the unlink is published, and the reclaimer frees a tag `t`
//! entry once [`EpochClock::horizon`]` >= t`.
//!
//! Ordering: `advance` is a `SeqCst` fetch-add and `pin` a `SeqCst` load,
//! so a pin that observes epoch ≥ t happens-after the advance that produced
//! t, which itself happens-after the unlink CAS the retirer performed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// A monotonic epoch clock with registered pins (active launches).
#[derive(Debug, Default)]
pub struct EpochClock {
    /// The global epoch, advanced once per retirement batch.
    clock: AtomicU64,
    /// Pin id allocator.
    next_pin: AtomicU64,
    /// Active pins: pin id → the epoch observed when the pin was taken.
    pins: Mutex<HashMap<u64, u64>>,
}

impl EpochClock {
    /// A fresh clock at epoch 0 with no pins.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch.
    pub fn current(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advances the clock and returns the new epoch — the retirement tag
    /// for memory whose unlink was published *before* this call.
    pub fn advance(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Pins the current epoch for the duration of the returned guard
    /// (one pin per launch / traversal).
    pub fn pin(&self) -> EpochPin<'_> {
        let id = self.next_pin.fetch_add(1, Ordering::Relaxed);
        let epoch = self.clock.load(Ordering::SeqCst);
        self.pins.lock().insert(id, epoch);
        EpochPin { clock: self, id }
    }

    /// The reclamation horizon: the minimum epoch any active pin holds, or
    /// `u64::MAX` when nothing is pinned. Memory retired with tag `t` is
    /// safe to free iff `horizon() >= t`.
    pub fn horizon(&self) -> u64 {
        self.pins
            .lock()
            .values()
            .copied()
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Number of active pins (in-flight launches).
    pub fn active_pins(&self) -> usize {
        self.pins.lock().len()
    }
}

/// RAII pin on an [`EpochClock`]; dropped when the launch completes.
#[derive(Debug)]
pub struct EpochPin<'c> {
    clock: &'c EpochClock,
    id: u64,
}

impl EpochPin<'_> {
    /// The epoch this pin holds.
    pub fn epoch(&self) -> u64 {
        self.clock.pins.lock()[&self.id]
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        self.clock.pins.lock().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clock_has_open_horizon() {
        let c = EpochClock::new();
        assert_eq!(c.current(), 0);
        assert_eq!(c.horizon(), u64::MAX, "no pins: everything reclaimable");
        assert_eq!(c.active_pins(), 0);
    }

    #[test]
    fn advance_is_monotonic_and_returns_new_epoch() {
        let c = EpochClock::new();
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.current(), 2);
    }

    #[test]
    fn pin_blocks_reclamation_of_later_retirements() {
        let c = EpochClock::new();
        let pin = c.pin(); // pinned at epoch 0
        assert_eq!(pin.epoch(), 0);
        let tag = c.advance(); // retire something at tag 1
        // The pinned launch started before the unlink: not reclaimable.
        assert!(c.horizon() < tag);
        drop(pin);
        assert!(c.horizon() >= tag, "pin released: reclaimable");
    }

    #[test]
    fn pin_taken_after_retirement_does_not_block_it() {
        let c = EpochClock::new();
        let tag = c.advance(); // tag 1, published before the pin below
        let _pin = c.pin(); // pinned at epoch 1: happens-after the unlink
        assert!(c.horizon() >= tag, "late pin cannot reach retired memory");
    }

    #[test]
    fn horizon_is_minimum_over_pins() {
        let c = EpochClock::new();
        let early = c.pin(); // epoch 0
        c.advance();
        let late = c.pin(); // epoch 1
        assert_eq!(c.horizon(), 0);
        assert_eq!(c.active_pins(), 2);
        drop(early);
        assert_eq!(c.horizon(), 1);
        drop(late);
        assert_eq!(c.horizon(), u64::MAX);
    }

    #[test]
    fn pins_work_across_threads() {
        let c = EpochClock::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    scope.spawn(|| {
                        let pin = c.pin();
                        let tag = c.advance();
                        assert!(pin.epoch() < tag);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        assert_eq!(c.active_pins(), 0);
        assert_eq!(c.current(), 8);
        assert_eq!(c.horizon(), u64::MAX);
    }
}
