//! # simt — a GPU warp-execution substrate on the CPU
//!
//! The SlabHash paper's algorithms (Ashkiani, Farach-Colton & Owens, *"A
//! Dynamic Hash Table for the GPU"*, IPDPS 2018) are *warp-synchronous*: they
//! are written against the semantics of a 32-wide SIMD group executing in
//! lockstep with warp-wide communication intrinsics, not against any
//! particular silicon. This crate reproduces exactly those semantics so the
//! data structures above it can be ported line-by-line from the paper's
//! pseudocode:
//!
//! * [`warp`] — lockstep lane state with `ballot` / `shfl` / `ffs` /
//!   `match_any`, each in two bit-identical flavors: a scalar per-lane
//!   oracle and branchless u64/u32 bitmask arithmetic (default `wide`
//!   feature);
//! * [`memory`] — device global memory as 128-byte slabs of atomic words
//!   with 32-/64-bit `atomicCAS`;
//! * [`grid`] — a warp scheduler that runs simulated warps concurrently
//!   across CPU cores (real races, real lock-freedom);
//! * [`counters`] — exact transaction accounting per warp;
//! * [`epoch`] — epoch-based grace periods (per-launch pins) for deferred
//!   reclamation of concurrently unlinked memory;
//! * [`model`] — a calibrated roofline model of the paper's Tesla K40c that
//!   converts counted transactions into estimated device time;
//! * [`telemetry`] (re-exported crate) — launch traces, work-distribution
//!   histograms, and contention heatmaps, collected per warp and merged
//!   after the launch exactly like counter blocks.
//!
//! ## Example: a warp searching its lanes
//!
//! ```
//! use simt::warp::{ballot_eq, ffs, shfl, WARP_SIZE};
//!
//! // A slab's 32 lanes as read by a warp.
//! let mut lanes = [u32::MAX; WARP_SIZE];
//! lanes[7] = 42; // key 42 lives in lane 7
//!
//! let found = ballot_eq(&lanes, 42);
//! assert_eq!(ffs(found), Some(7));
//! assert_eq!(shfl(&lanes, 7), 42);
//! ```

// `deny`, not `forbid`: the `pool` module opts back in for exactly two
// audited primitives (lifetime-erased jobs on persistent executors, the
// lock-free chunk dispenser) — see its module docs for the soundness
// argument. Everything else in the crate stays in the safe subset.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod counters;
pub mod epoch;
pub mod grid;
pub mod memory;
pub mod model;
pub(crate) mod pool;
pub mod shard;
pub mod warp;

pub use telemetry;

pub use chaos::{disable_chaos, set_chaos, ChaosGuard, FaultPlan};
pub use counters::PerfCounters;
pub use epoch::{EpochClock, EpochPin};
pub use grid::{Dispatch, Grid, LaunchError, LaunchReport, WarpCtx};
pub use pool::PoolStats;
pub use memory::{pack_pair, unpack_pair, SlabStorage, SLAB_BYTES, WORDS_PER_SLAB};
pub use shard::{ShardMap, ShardPlan};
pub use model::{GpuEstimate, GpuModel, ResourceBreakdown};
pub use memory::{TAG_EMPTY, TAG_WILD, TAG_WORDS_PER_SLAB};
pub use warp::{
    ballot, ballot_eq, byte_eq_mask, ffs, lanes_below, match_any, popc, shfl, Lane, WARP_SIZE,
};
