//! Shard ownership: contiguous bucket-range → executor mapping plus the
//! reusable claim state behind [`Grid::launch_sharded`](crate::Grid::launch_sharded).
//!
//! The partitioned-batch experiment in PR 5 sorted requests by bucket and
//! fed them through the shared chunk dispenser — which meant a hot bucket's
//! requests, now *adjacent*, were routinely split across a chunk boundary
//! and executed by two pool workers at the same instant: the sort
//! manufactured exactly the CAS contention it was meant to remove (the
//! 0.82x regression in BENCH_5.json). Sharded dispatch fixes the routing
//! instead of the order: every bucket belongs to exactly one contiguous
//! shard, every shard has one *owning* executor, and a bucket's requests
//! are only ever CASed by their owner unless an idle executor steals the
//! tail. This is the delegation design from the NUMA hash-table literature
//! applied to the executor pool.
//!
//! Two types live here:
//!
//! * [`ShardMap`] — pure arithmetic mapping `bucket → shard` and
//!   `shard → bucket range`. Shards are contiguous, cover every bucket, and
//!   are balanced to within one bucket.
//! * [`ShardPlan`] — the reusable per-launch claim state: one atomic cursor
//!   per shard over that shard's warp-sized chunks. Resetting a plan reuses
//!   its buffers, so steady-state sharded launches allocate nothing.
//!
//! Correctness never depends on the mapping: a request executed by a
//! non-owner (stolen tail, dead owner, stale bucket hint) still runs the
//! same lock-free kernel against the same table. Sharding is purely a
//! scheduling affinity, which is what lets the claim protocol stay a plain
//! `fetch_add` with work stealing rather than a strict SPSC handoff.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Contiguous, balanced partition of `items` buckets into `shards` ranges.
///
/// `shard_of` and `range` are exact inverses: `range(s)` is precisely the
/// set of items `i` with `shard_of(i) == s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    items: u32,
    shards: u32,
}

impl ShardMap {
    /// A map over `items` buckets split into `shards` contiguous ranges.
    /// `shards` is clamped to `1..=items` (and `items` to at least 1), so
    /// every shard is non-empty.
    pub fn new(items: u32, shards: u32) -> Self {
        let items = items.max(1);
        Self {
            items,
            shards: shards.clamp(1, items),
        }
    }

    /// Number of shards (after clamping).
    pub fn num_shards(&self) -> u32 {
        self.shards
    }

    /// Number of items covered.
    pub fn num_items(&self) -> u32 {
        self.items
    }

    /// The shard owning `item`.
    #[inline]
    pub fn shard_of(&self, item: u32) -> u32 {
        debug_assert!(item < self.items, "item {item} out of range {}", self.items);
        ((u64::from(item) * u64::from(self.shards)) / u64::from(self.items)) as u32
    }

    /// The contiguous item range owned by `shard`.
    pub fn range(&self, shard: u32) -> std::ops::Range<u32> {
        debug_assert!(shard < self.shards);
        let lo = (u64::from(shard) * u64::from(self.items)).div_ceil(u64::from(self.shards));
        let hi = ((u64::from(shard) + 1) * u64::from(self.items)).div_ceil(u64::from(self.shards));
        lo as u32..hi as u32
    }
}

/// Reusable per-launch claim state for sharded dispatch: one atomic chunk
/// cursor per shard, over caller-provided element bounds.
///
/// A plan is reset before each launch with the prefix-sum `bounds` of the
/// per-shard sub-batches (`bounds[s]..bounds[s + 1]` is shard `s`'s element
/// range) and the chunk (warp) size. All interior buffers are retained
/// across resets, so a reused plan allocates only when the shard count
/// grows — steady-state sharded batch loops are allocation-free.
#[derive(Debug, Default)]
pub struct ShardPlan {
    /// Chunk claim cursor per shard (indices into the shard's chunk list).
    next: Vec<AtomicUsize>,
    /// Prefix sums of per-shard chunk counts; `chunk_base[s]` is the global
    /// warp id of shard `s`'s first chunk. Length `num_shards() + 1`.
    chunk_base: Vec<usize>,
    /// Element offsets per shard, copied from the caller. Length
    /// `num_shards() + 1`, monotone, starting at 0.
    bounds: Vec<usize>,
    /// Elements per chunk (the warp size in practice).
    chunk: usize,
}

impl ShardPlan {
    /// An empty plan; call [`reset`](Self::reset) before launching.
    pub fn new() -> Self {
        Self {
            next: Vec::new(),
            chunk_base: Vec::new(),
            bounds: Vec::new(),
            chunk: 1,
        }
    }

    /// Re-arms the plan for one launch over sub-batches described by
    /// `bounds` (monotone prefix sums starting at 0; `bounds.len() - 1`
    /// shards) handed out in chunks of `chunk` elements.
    ///
    /// # Panics
    /// If `chunk == 0`, `bounds` is empty or does not start at 0, or
    /// `bounds` is not monotone non-decreasing.
    pub fn reset(&mut self, bounds: &[usize], chunk: usize) {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(
            bounds.first() == Some(&0),
            "bounds must be a prefix sum starting at 0"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "bounds must be monotone non-decreasing"
        );
        self.chunk = chunk;
        self.bounds.clear();
        self.bounds.extend_from_slice(bounds);
        self.chunk_base.clear();
        self.chunk_base.push(0);
        let mut total = 0usize;
        for w in bounds.windows(2) {
            total += (w[1] - w[0]).div_ceil(chunk);
            self.chunk_base.push(total);
        }
        let shards = self.num_shards();
        if self.next.len() < shards {
            self.next.resize_with(shards, || AtomicUsize::new(0));
        }
        for cursor in &self.next[..shards] {
            cursor.store(0, Ordering::Relaxed);
        }
    }

    /// Number of shards this plan currently describes.
    pub fn num_shards(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Total chunks (warps) across all shards.
    pub fn num_chunks(&self) -> usize {
        self.chunk_base.last().copied().unwrap_or(0)
    }

    /// Total elements across all shards.
    pub fn total_items(&self) -> usize {
        self.bounds.last().copied().unwrap_or(0)
    }

    /// Claims the next chunk of `shard`: its launch-global warp id and
    /// element range, or `None` once the shard is drained. Each chunk is
    /// handed out at most once across all concurrent claimers (the cursor
    /// `fetch_add` is the sole source of chunk indices).
    pub(crate) fn claim(&self, shard: usize) -> Option<(usize, usize, usize)> {
        let lo = self.bounds[shard];
        let hi = self.bounds[shard + 1];
        let chunks = self.chunk_base[shard + 1] - self.chunk_base[shard];
        let c = self.next[shard].fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            return None;
        }
        let start = lo + c * self.chunk;
        Some((self.chunk_base[shard] + c, start, (start + self.chunk).min(hi)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_map_covers_contiguously_and_inverts() {
        for items in [1u32, 2, 7, 32, 100, 1024, 100_003] {
            for shards in [1u32, 2, 3, 8, 64] {
                let map = ShardMap::new(items, shards);
                assert!(map.num_shards() >= 1 && map.num_shards() <= items.max(1));
                let mut covered = 0u32;
                for s in 0..map.num_shards() {
                    let range = map.range(s);
                    assert_eq!(range.start, covered, "ranges must be contiguous");
                    assert!(!range.is_empty(), "no empty shards after clamping");
                    for i in range.clone() {
                        assert_eq!(map.shard_of(i), s);
                    }
                    covered = range.end;
                }
                assert_eq!(covered, items, "ranges must cover every item");
            }
        }
    }

    #[test]
    fn shard_map_is_balanced_within_one() {
        let map = ShardMap::new(1000, 7);
        let sizes: Vec<u32> = (0..7).map(|s| map.range(s).len() as u32).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes {sizes:?} must be balanced");
        assert_eq!(sizes.iter().sum::<u32>(), 1000);
    }

    #[test]
    fn plan_claims_every_chunk_once_with_global_warp_ids() {
        let mut plan = ShardPlan::new();
        // 3 shards: 40, 0, 25 elements; chunk 16 → 3 + 0 + 2 chunks.
        plan.reset(&[0, 40, 40, 65], 16);
        assert_eq!(plan.num_shards(), 3);
        assert_eq!(plan.num_chunks(), 5);
        assert_eq!(plan.total_items(), 65);
        let mut claims = vec![];
        for shard in 0..3 {
            while let Some(c) = plan.claim(shard) {
                claims.push(c);
            }
        }
        claims.sort_unstable();
        assert_eq!(
            claims,
            vec![(0, 0, 16), (1, 16, 32), (2, 32, 40), (3, 40, 56), (4, 56, 65)]
        );
    }

    #[test]
    fn plan_reset_reuses_buffers() {
        let mut plan = ShardPlan::new();
        plan.reset(&[0, 100, 200], 32);
        while plan.claim(0).is_some() {}
        let cap = plan.next.capacity();
        plan.reset(&[0, 50, 120], 32);
        assert_eq!(plan.next.capacity(), cap, "reset must not reallocate");
        assert_eq!(plan.claim(0), Some((0, 0, 32)));
        assert_eq!(plan.claim(1), Some((2, 50, 82)));
    }
}
