//! Pressure gauges: host-side instantaneous values with watermark
//! thresholds.
//!
//! Traces and histograms answer *what happened*; gauges answer *how close
//! to the edge are we right now*. An allocator exports its outstanding-slab
//! count and free-unit headroom as gauges; a maintenance policy (or a CI
//! soak job) reads them to see pressure building *before* it turns into an
//! `AllocError`.
//!
//! A [`Gauge`] tracks the current value, the extreme value ever observed
//! (peak for high watermarks, trough for low ones), and — when armed with a
//! threshold — counts *breaches*: transitions from the safe side of the
//! threshold to the unsafe side. Counting transitions rather than samples
//! makes `breaches()` a stable assertion target for tests ("the low-free
//! watermark fired at least once") independent of how often the hot path
//! updates the gauge.
//!
//! Updates are lock-free atomics, safe to call from concurrently executing
//! simulated warps; like all host-side statistics they are never billed to
//! `PerfCounters`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which direction of travel counts as pressure for a gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Watermark {
    /// Pressure is the value rising to (or above) the threshold — e.g.
    /// outstanding allocations against a usage bound.
    High,
    /// Pressure is the value falling to (or below) the threshold — e.g.
    /// free units against a headroom floor.
    Low,
}

/// A named instantaneous value with optional watermark threshold.
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicU64,
    /// Most extreme value observed: maximum for `Watermark::High`,
    /// minimum for `Watermark::Low`.
    extreme: AtomicU64,
    watermark: Watermark,
    /// Armed threshold; `u64::MAX` (High) / untripped sentinel handled via
    /// `armed`.
    threshold: u64,
    armed: bool,
    breaches: AtomicU64,
}

impl Gauge {
    /// An unarmed high-watermark gauge starting at 0.
    pub fn new(name: &'static str) -> Self {
        Self::with_direction(name, Watermark::High)
    }

    /// An unarmed gauge with an explicit pressure direction, starting at 0.
    pub fn with_direction(name: &'static str, watermark: Watermark) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            extreme: AtomicU64::new(match watermark {
                Watermark::High => 0,
                Watermark::Low => u64::MAX,
            }),
            watermark,
            threshold: 0,
            armed: false,
            breaches: AtomicU64::new(0),
        }
    }

    /// Arms the watermark: crossing `threshold` in the pressure direction
    /// counts one breach per crossing.
    pub fn with_threshold(mut self, threshold: u64) -> Self {
        self.threshold = threshold;
        self.armed = true;
        self
    }

    /// The gauge's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// The most extreme value observed (peak for high watermarks, trough
    /// for low ones). For a low-watermark gauge that was never set, this is
    /// `u64::MAX`.
    pub fn extreme(&self) -> u64 {
        self.extreme.load(Ordering::Acquire)
    }

    /// The armed threshold, if any.
    pub fn threshold(&self) -> Option<u64> {
        self.armed.then_some(self.threshold)
    }

    /// How many times the value crossed the threshold in the pressure
    /// direction (safe → unsafe transitions).
    pub fn breaches(&self) -> u64 {
        self.breaches.load(Ordering::Acquire)
    }

    /// True while the current value sits on the unsafe side of the
    /// threshold.
    pub fn breached(&self) -> bool {
        self.armed && self.pressured(self.value())
    }

    /// Sets the value, updating the extreme and counting a breach when the
    /// update crosses the threshold in the pressure direction.
    pub fn set(&self, new: u64) {
        let old = self.value.swap(new, Ordering::AcqRel);
        self.note_extreme(new);
        if self.armed && !self.pressured(old) && self.pressured(new) {
            self.breaches.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Adds `delta` to the value (saturating).
    pub fn add(&self, delta: u64) {
        self.update(|v| v.saturating_add(delta));
    }

    /// Subtracts `delta` from the value (saturating).
    pub fn sub(&self, delta: u64) {
        self.update(|v| v.saturating_sub(delta));
    }

    fn update(&self, f: impl Fn(u64) -> u64) {
        let old = self
            .value
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| Some(f(v)))
            .expect("gauge update closure always returns Some");
        let new = f(old);
        self.note_extreme(new);
        if self.armed && !self.pressured(old) && self.pressured(new) {
            self.breaches.fetch_add(1, Ordering::AcqRel);
        }
    }

    fn pressured(&self, v: u64) -> bool {
        match self.watermark {
            Watermark::High => v >= self.threshold,
            Watermark::Low => v <= self.threshold,
        }
    }

    fn note_extreme(&self, v: u64) {
        match self.watermark {
            Watermark::High => {
                self.extreme.fetch_max(v, Ordering::AcqRel);
            }
            Watermark::Low => {
                self.extreme.fetch_min(v, Ordering::AcqRel);
            }
        }
    }

    /// A point-in-time copy for reporting.
    pub fn snapshot(&self) -> GaugeSnapshot {
        GaugeSnapshot {
            name: self.name,
            value: self.value(),
            extreme: self.extreme(),
            threshold: self.threshold(),
            breaches: self.breaches(),
        }
    }
}

/// A point-in-time copy of a [`Gauge`], detached from its atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Gauge name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
    /// Most extreme value observed (peak or trough per direction).
    pub extreme: u64,
    /// Armed threshold, if any.
    pub threshold: Option<u64>,
    /// Threshold crossings in the pressure direction.
    pub breaches: u64,
}

impl std::fmt::Display for GaugeSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} = {} (extreme {}",
            self.name, self.value, self.extreme
        )?;
        if let Some(t) = self.threshold {
            write!(f, ", threshold {t}, breaches {}", self.breaches)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_watermark_tracks_peak_and_breaches() {
        let g = Gauge::new("outstanding").with_threshold(10);
        g.set(5);
        assert!(!g.breached());
        assert_eq!(g.breaches(), 0);
        g.set(12); // crosses up: one breach
        assert!(g.breached());
        assert_eq!(g.breaches(), 1);
        g.set(15); // stays above: still the same breach episode
        assert_eq!(g.breaches(), 1);
        g.set(3); // recovers
        assert!(!g.breached());
        g.set(10); // crosses again (>= threshold)
        assert_eq!(g.breaches(), 2);
        assert_eq!(g.extreme(), 15, "peak survives recovery");
        assert_eq!(g.value(), 10);
    }

    #[test]
    fn low_watermark_tracks_trough() {
        let g = Gauge::with_direction("free_units", Watermark::Low).with_threshold(4);
        g.set(100);
        assert_eq!(g.breaches(), 0);
        g.set(4); // at the floor: breach
        assert_eq!(g.breaches(), 1);
        g.set(2);
        assert_eq!(g.breaches(), 1, "still inside the same episode");
        g.set(50);
        g.set(0);
        assert_eq!(g.breaches(), 2);
        assert_eq!(g.extreme(), 0, "trough recorded");
    }

    #[test]
    fn add_sub_saturate_and_count_crossings() {
        let g = Gauge::new("slabs").with_threshold(3);
        g.add(2);
        g.add(2); // 4: crossed
        assert_eq!(g.breaches(), 1);
        g.sub(10); // saturates at 0
        assert_eq!(g.value(), 0);
        g.add(3); // crossed again
        assert_eq!(g.breaches(), 2);
        assert_eq!(g.extreme(), 4);
    }

    #[test]
    fn unarmed_gauge_never_breaches() {
        let g = Gauge::new("plain");
        g.set(u64::MAX);
        assert_eq!(g.threshold(), None);
        assert_eq!(g.breaches(), 0);
        assert!(!g.breached());
    }

    #[test]
    fn snapshot_and_display() {
        let g = Gauge::with_direction("free", Watermark::Low).with_threshold(2);
        g.set(8);
        g.set(1);
        let s = g.snapshot();
        assert_eq!(s.name, "free");
        assert_eq!(s.value, 1);
        assert_eq!(s.extreme, 1);
        assert_eq!(s.threshold, Some(2));
        assert_eq!(s.breaches, 1);
        let text = s.to_string();
        assert!(text.contains("free = 1"), "{text}");
        assert!(text.contains("threshold 2"), "{text}");
    }

    #[test]
    fn concurrent_adds_are_exact() {
        let g = Gauge::new("contended").with_threshold(1_000_000);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        g.add(1);
                    }
                });
            }
        });
        assert_eq!(g.value(), 8000);
        assert_eq!(g.extreme(), 8000);
        assert_eq!(g.breaches(), 0);
    }
}
