//! Structured launch → warp → op trace events.
//!
//! Events carry a *logical* timestamp: a global sequence number drawn from
//! the owning trace session. Wall-clock timestamps would destroy replay
//! determinism (the same seeded chaos schedule must produce a byte-identical
//! event stream), and the viewers we target — JSON Lines consumers and
//! chrome://tracing — only require timestamps to be monotonic.

/// What happened, with its event-specific payload.
///
/// Field strings (`op`, `status`) are `&'static str` identifiers supplied by
/// the instrumented code, never user data, so the JSON exporters emit them
/// without escaping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A grid launch started; `warps` is the number of warps scheduled.
    LaunchBegin {
        /// Warps scheduled in this launch.
        warps: u32,
    },
    /// A grid launch finished draining.
    LaunchEnd {
        /// Warps that ran in this launch.
        warps: u32,
    },
    /// One warp began executing its chunk.
    WarpBegin,
    /// One warp finished its chunk, having completed `ops` operations.
    WarpEnd {
        /// Operations the warp finished between begin and end.
        ops: u32,
    },
    /// One hash-table operation finished (successfully or not).
    Op {
        /// Operation name (`"search"`, `"replace"`, `"delete"`, …).
        op: &'static str,
        /// The operation's key.
        key: u32,
        /// The bucket the key hashed to.
        bucket: u32,
        /// Warp rounds this operation was the source lane's work for.
        rounds: u32,
        /// CAS failures charged to this operation.
        retries: u32,
        /// Slabs visited (1 = resolved in the base slab).
        chain: u32,
        /// Outcome tag (`"inserted"`, `"found"`, `"failed"`, …).
        status: &'static str,
    },
    /// The slab allocator served one allocation after `hops`
    /// resident-block changes.
    Alloc {
        /// Resident-block hops needed before a free slot was claimed.
        hops: u32,
    },
    /// An ingress-broker admission decision or state transition.
    Ingress {
        /// Action tag (`"dispatch"`, `"shed_write"`, `"timeout"`,
        /// `"breaker_open"`, `"breaker_half_open"`, `"breaker_close"`,
        /// `"retry"`, …).
        action: &'static str,
        /// Submission-queue depth (queued + drained) observed when the
        /// event fired.
        depth: u32,
    },
}

/// The warp id attached to launch-scope events, which no single warp owns.
pub const LAUNCH_WARP: u32 = u32::MAX;

/// One recorded event: logical timestamp, originating warp, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical timestamp: globally ordered sequence number within the
    /// trace session.
    pub seq: u64,
    /// Warp that recorded the event, or [`LAUNCH_WARP`] for launch-scope
    /// events.
    pub warp: u32,
    /// The event payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Serializes the event as one JSON Lines record. Every record has
    /// `ts`, `warp`, and `kind`; op records add the per-op fields.
    pub fn to_jsonl_line(&self) -> String {
        let head = format!("{{\"ts\":{},\"warp\":{}", self.seq, self.warp);
        match self.kind {
            EventKind::LaunchBegin { warps } => {
                format!("{head},\"kind\":\"launch_begin\",\"warps\":{warps}}}")
            }
            EventKind::LaunchEnd { warps } => {
                format!("{head},\"kind\":\"launch_end\",\"warps\":{warps}}}")
            }
            EventKind::WarpBegin => format!("{head},\"kind\":\"warp_begin\"}}"),
            EventKind::WarpEnd { ops } => {
                format!("{head},\"kind\":\"warp_end\",\"ops\":{ops}}}")
            }
            EventKind::Op {
                op,
                key,
                bucket,
                rounds,
                retries,
                chain,
                status,
            } => format!(
                "{head},\"kind\":\"op\",\"op\":\"{op}\",\"key\":{key},\"bucket\":{bucket},\
                 \"rounds\":{rounds},\"retries\":{retries},\"chain\":{chain},\
                 \"status\":\"{status}\"}}"
            ),
            EventKind::Alloc { hops } => {
                format!("{head},\"kind\":\"alloc\",\"hops\":{hops}}}")
            }
            EventKind::Ingress { action, depth } => {
                format!("{head},\"kind\":\"ingress\",\"action\":\"{action}\",\"depth\":{depth}}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_have_required_fields() {
        let cases = [
            EventKind::LaunchBegin { warps: 4 },
            EventKind::LaunchEnd { warps: 4 },
            EventKind::WarpBegin,
            EventKind::WarpEnd { ops: 32 },
            EventKind::Op {
                op: "replace",
                key: 7,
                bucket: 3,
                rounds: 2,
                retries: 1,
                chain: 1,
                status: "inserted",
            },
            EventKind::Alloc { hops: 0 },
            EventKind::Ingress {
                action: "shed_write",
                depth: 512,
            },
        ];
        for (i, kind) in cases.into_iter().enumerate() {
            let line = TraceEvent {
                seq: i as u64,
                warp: 0,
                kind,
            }
            .to_jsonl_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"ts\":"), "{line}");
            assert!(line.contains("\"warp\":"), "{line}");
            assert!(line.contains("\"kind\":"), "{line}");
        }
    }

    #[test]
    fn op_line_carries_all_op_fields() {
        let line = TraceEvent {
            seq: 9,
            warp: 2,
            kind: EventKind::Op {
                op: "search",
                key: 42,
                bucket: 5,
                rounds: 1,
                retries: 0,
                chain: 2,
                status: "found",
            },
        }
        .to_jsonl_line();
        assert_eq!(
            line,
            "{\"ts\":9,\"warp\":2,\"kind\":\"op\",\"op\":\"search\",\"key\":42,\
             \"bucket\":5,\"rounds\":1,\"retries\":0,\"chain\":2,\"status\":\"found\"}"
        );
    }
}
