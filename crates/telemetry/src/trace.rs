//! A harvested event stream and its exporters (JSON Lines,
//! chrome://tracing).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use crate::event::{EventKind, TraceEvent, LAUNCH_WARP};

/// An immutable, seq-sorted event stream harvested from a
/// [`crate::TraceSession`].
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// Wraps a seq-sorted event stream. `dropped` is the number of events
    /// lost to ring overflow.
    pub fn new(events: Vec<TraceEvent>, dropped: u64) -> Self {
        debug_assert!(events.windows(2).all(|w| w[0].seq <= w[1].seq));
        Self { events, dropped }
    }

    /// The events, sorted by logical timestamp.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events lost to ring overflow. When nonzero, reconciliation against
    /// `PerfCounters` totals is only a lower bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of per-operation (`op`) events in the trace.
    pub fn op_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Op { .. }))
            .count() as u64
    }

    /// Sum of CAS retries over all `op` events.
    pub fn retry_sum(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e.kind {
                EventKind::Op { retries, .. } => retries as u64,
                _ => 0,
            })
            .sum()
    }

    /// Per-bucket CAS-retry totals, sorted by bucket id — the trace-side
    /// input to contention heatmaps.
    pub fn cas_failures_by_bucket(&self) -> Vec<(u32, u64)> {
        let mut map: BTreeMap<u32, u64> = BTreeMap::new();
        for e in &self.events {
            if let EventKind::Op {
                bucket, retries, ..
            } = e.kind
            {
                if retries > 0 {
                    *map.entry(bucket).or_insert(0) += retries as u64;
                }
            }
        }
        map.into_iter().collect()
    }

    /// Serializes the trace as JSON Lines, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_jsonl_line());
            out.push('\n');
        }
        out
    }

    /// Serializes the trace in chrome://tracing `trace_event` format
    /// (load the file via the "Load" button in `chrome://tracing`, or in
    /// Perfetto's legacy trace viewer).
    ///
    /// Mapping: each warp is a track (`tid` = warp id); `warp_begin` /
    /// `warp_end` pairs become complete (`"ph":"X"`) spans, `op` and
    /// `alloc` events become thread-scoped instants (`"ph":"i"`) carrying
    /// their payload in `args`, and `launch_begin` / `launch_end` pairs
    /// become spans on a dedicated launch track. Timestamps are the
    /// logical sequence numbers, interpreted by the viewer as
    /// microseconds.
    pub fn to_chrome_trace(&self) -> String {
        let mut entries: Vec<String> = Vec::new();
        let mut open_warps: BTreeMap<u32, u64> = BTreeMap::new();
        let mut open_launches: Vec<u64> = Vec::new();
        for e in &self.events {
            match e.kind {
                EventKind::LaunchBegin { .. } => open_launches.push(e.seq),
                EventKind::LaunchEnd { warps } => {
                    if let Some(begin) = open_launches.pop() {
                        entries.push(format!(
                            "{{\"name\":\"launch\",\"cat\":\"launch\",\"ph\":\"X\",\
                             \"ts\":{begin},\"dur\":{},\"pid\":0,\"tid\":{LAUNCH_WARP},\
                             \"args\":{{\"warps\":{warps}}}}}",
                            (e.seq - begin).max(1)
                        ));
                    }
                }
                EventKind::WarpBegin => {
                    open_warps.insert(e.warp, e.seq);
                }
                EventKind::WarpEnd { ops } => {
                    if let Some(begin) = open_warps.remove(&e.warp) {
                        entries.push(format!(
                            "{{\"name\":\"warp\",\"cat\":\"warp\",\"ph\":\"X\",\
                             \"ts\":{begin},\"dur\":{},\"pid\":0,\"tid\":{},\
                             \"args\":{{\"ops\":{ops}}}}}",
                            (e.seq - begin).max(1),
                            e.warp
                        ));
                    }
                }
                EventKind::Op {
                    op,
                    key,
                    bucket,
                    rounds,
                    retries,
                    chain,
                    status,
                } => entries.push(format!(
                    "{{\"name\":\"{op}\",\"cat\":\"op\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"key\":{key},\
                     \"bucket\":{bucket},\"rounds\":{rounds},\"retries\":{retries},\
                     \"chain\":{chain},\"status\":\"{status}\"}}}}",
                    e.seq, e.warp
                )),
                EventKind::Alloc { hops } => entries.push(format!(
                    "{{\"name\":\"alloc\",\"cat\":\"alloc\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"hops\":{hops}}}}}",
                    e.seq, e.warp
                )),
                EventKind::Ingress { action, depth } => entries.push(format!(
                    "{{\"name\":\"{action}\",\"cat\":\"ingress\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"depth\":{depth}}}}}",
                    e.seq, e.warp
                )),
            }
        }
        format!("{{\"traceEvents\":[{}]}}", entries.join(","))
    }

    /// Writes [`Trace::to_jsonl`] output to `path`.
    ///
    /// # Errors
    /// Propagates I/O failures from creating or writing the file.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())
    }

    /// Writes [`Trace::to_chrome_trace`] output to `path`.
    ///
    /// # Errors
    /// Propagates I/O failures from creating or writing the file.
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_chrome_trace().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mk = |seq, warp, kind| TraceEvent { seq, warp, kind };
        Trace::new(
            vec![
                mk(0, LAUNCH_WARP, EventKind::LaunchBegin { warps: 2 }),
                mk(1, 0, EventKind::WarpBegin),
                mk(
                    2,
                    0,
                    EventKind::Op {
                        op: "replace",
                        key: 10,
                        bucket: 1,
                        rounds: 2,
                        retries: 3,
                        chain: 1,
                        status: "inserted",
                    },
                ),
                mk(3, 0, EventKind::Alloc { hops: 1 }),
                mk(
                    4,
                    0,
                    EventKind::Op {
                        op: "search",
                        key: 10,
                        bucket: 1,
                        rounds: 1,
                        retries: 0,
                        chain: 1,
                        status: "found",
                    },
                ),
                mk(5, 0, EventKind::WarpEnd { ops: 2 }),
                mk(6, LAUNCH_WARP, EventKind::LaunchEnd { warps: 2 }),
            ],
            0,
        )
    }

    #[test]
    fn op_count_and_retry_sum() {
        let t = sample();
        assert_eq!(t.op_count(), 2);
        assert_eq!(t.retry_sum(), 3);
        assert_eq!(t.cas_failures_by_bucket(), vec![(1, 3)]);
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let t = sample();
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.lines().count(), t.events().len());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn chrome_trace_pairs_spans_and_keeps_instants() {
        let t = sample();
        let json = t.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // 1 launch span + 1 warp span + 2 op instants + 1 alloc instant.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 3);
        assert!(json.contains("\"name\":\"launch\""));
        assert!(json.contains("\"name\":\"warp\""));
        assert!(json.contains("\"status\":\"inserted\""));
    }

    #[test]
    fn empty_trace_exports_are_valid() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.to_jsonl(), "");
        assert_eq!(t.to_chrome_trace(), "{\"traceEvents\":[]}");
    }
}
