//! Request-scoped spans: where did a request spend its time?
//!
//! A [`RequestSpan`] is minted (with a process-unique correlation id) when a
//! request enters the system and rides alongside it through every stage of
//! the ingress path. Each stage boundary drops a wall-clock mark; when the
//! request is answered, the marks collapse into a [`SpanReport`] — one
//! duration per [`Stage`], telescoping so that the per-stage durations sum
//! *exactly* to the end-to-end latency. That is what turns one opaque p99
//! into a decomposition an operator can act on: queue-wait says "add
//! brokers", execute says "the table is the bottleneck", admission says
//! "shedding is burning broker time".
//!
//! Stage durations are measured between consecutive marks (or from the
//! submission instant for the first marked stage). A stage that was never
//! marked — a request refused at admission never dispatches — reports zero
//! and is flagged unmarked, so aggregators can skip it instead of averaging
//! in fake zeros. On retries a stage mark is simply overwritten by the
//! later attempt; the telescoping property keeps the sum equal to the total
//! (earlier attempts' time is attributed to the stage that repeated).
//!
//! Spans use real wall-clock `Instant`s, not the logical timestamps traces
//! use: they exist to measure *time*, are never part of the replay-identical
//! trace stream, and monotonicity is inherited from `Instant`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Correlation ids are process-unique and never reused; 0 is reserved for
/// "no span" (e.g. a reply synthesized after broker death).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// The stages of the ingress path, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Sitting in the bounded submission queue, waiting for the broker to
    /// drain it into a batch.
    QueueWait = 0,
    /// The admission pass: deadline check, circuit breaker, memory-pressure
    /// write shed.
    Admission = 1,
    /// Admitted and batched, waiting for the executor-pool dispatch to
    /// begin (includes any earlier failed attempts when retried).
    Dispatch = 2,
    /// Executing as part of a warp-shaped batch on the pool.
    Execute = 3,
    /// Result routed back over the reply channel.
    Reply = 4,
}

/// Number of stages in [`Stage`].
pub const STAGE_COUNT: usize = 5;

/// Every stage, in pipeline order (useful for iteration and labeling).
pub const STAGES: [Stage; STAGE_COUNT] = [
    Stage::QueueWait,
    Stage::Admission,
    Stage::Dispatch,
    Stage::Execute,
    Stage::Reply,
];

impl Stage {
    /// Stable snake_case label, used for metric labels and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Admission => "admission",
            Stage::Dispatch => "dispatch",
            Stage::Execute => "execute",
            Stage::Reply => "reply",
        }
    }
}

/// A live span: correlation id, submission instant, and one optional mark
/// per stage.
#[derive(Debug, Clone)]
pub struct RequestSpan {
    id: u64,
    submitted: Instant,
    marks: [Option<Instant>; STAGE_COUNT],
}

impl RequestSpan {
    /// Mints a new span with a fresh correlation id, submitted now.
    pub fn begin() -> Self {
        Self::begin_at(Instant::now())
    }

    /// Mints a new span with an explicit submission instant (tests).
    pub fn begin_at(submitted: Instant) -> Self {
        Self {
            id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            submitted,
            marks: [None; STAGE_COUNT],
        }
    }

    /// The correlation id (process-unique, nonzero).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The instant the request entered the system.
    pub fn submitted(&self) -> Instant {
        self.submitted
    }

    /// Marks `stage` as completed now.
    pub fn mark(&mut self, stage: Stage) {
        self.mark_at(stage, Instant::now());
    }

    /// Marks `stage` as completed at `now`. Batch-scope boundaries (one
    /// `Instant::now()` shared by every request in a dispatched batch) use
    /// this to avoid N clock reads.
    pub fn mark_at(&mut self, stage: Stage, now: Instant) {
        self.marks[stage as usize] = Some(now);
    }

    /// The recorded mark for `stage`, if any.
    pub fn mark_of(&self, stage: Stage) -> Option<Instant> {
        self.marks[stage as usize]
    }

    /// Collapses the marks into per-stage durations, ending the span at
    /// `end`. Durations telescope: each marked stage is billed the time
    /// since the previous marked stage (or submission), so the marked
    /// durations sum exactly to `end - submitted` when the final stage's
    /// mark equals `end`.
    pub fn report(&self, end: Instant) -> SpanReport {
        let mut stage_ns = [0u64; STAGE_COUNT];
        let mut marked = [false; STAGE_COUNT];
        let mut prev = self.submitted;
        for (i, mark) in self.marks.iter().enumerate() {
            if let Some(m) = *mark {
                stage_ns[i] = m.saturating_duration_since(prev).as_nanos().min(u64::MAX as u128) as u64;
                marked[i] = true;
                prev = m;
            }
        }
        SpanReport {
            id: self.id,
            stage_ns,
            marked,
            total_ns: end.saturating_duration_since(self.submitted).as_nanos().min(u64::MAX as u128)
                as u64,
        }
    }
}

/// The finished decomposition of one request's latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanReport {
    /// Correlation id of the span (0 for a synthesized "no span" report).
    pub id: u64,
    /// Nanoseconds spent in each stage (zero when unmarked).
    pub stage_ns: [u64; STAGE_COUNT],
    /// Whether each stage was actually reached.
    pub marked: [bool; STAGE_COUNT],
    /// End-to-end nanoseconds from submission to the span's end.
    pub total_ns: u64,
}

impl SpanReport {
    /// A zeroed report for replies that never had a span (broker death).
    pub fn none() -> Self {
        Self {
            id: 0,
            stage_ns: [0; STAGE_COUNT],
            marked: [false; STAGE_COUNT],
            total_ns: 0,
        }
    }

    /// Nanoseconds spent in `stage`.
    pub fn stage(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Sum of the marked stages' nanoseconds.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ids_are_unique_and_nonzero() {
        let a = RequestSpan::begin();
        let b = RequestSpan::begin();
        assert_ne!(a.id(), 0);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn marked_stages_telescope_to_the_total() {
        let t0 = Instant::now();
        let mut span = RequestSpan::begin_at(t0);
        let mut t = t0;
        for stage in STAGES {
            t += Duration::from_micros(10);
            span.mark_at(stage, t);
        }
        let report = span.report(t);
        assert!(report.marked.iter().all(|&m| m));
        assert_eq!(report.stage_sum_ns(), report.total_ns);
        for stage in STAGES {
            assert_eq!(report.stage(stage), 10_000);
        }
    }

    #[test]
    fn unmarked_stages_are_zero_and_flagged() {
        let t0 = Instant::now();
        let mut span = RequestSpan::begin_at(t0);
        span.mark_at(Stage::QueueWait, t0 + Duration::from_micros(5));
        span.mark_at(Stage::Admission, t0 + Duration::from_micros(8));
        // Refused at admission: no dispatch/execute, answered at t0+9.
        let report = span.report(t0 + Duration::from_micros(9));
        assert!(report.marked[Stage::Admission as usize]);
        assert!(!report.marked[Stage::Dispatch as usize]);
        assert_eq!(report.stage(Stage::QueueWait), 5_000);
        assert_eq!(report.stage(Stage::Admission), 3_000);
        assert_eq!(report.stage(Stage::Execute), 0);
        assert_eq!(report.total_ns, 9_000);
    }

    #[test]
    fn retry_overwrites_keep_the_telescoping_property() {
        let t0 = Instant::now();
        let mut span = RequestSpan::begin_at(t0);
        span.mark_at(Stage::QueueWait, t0 + Duration::from_micros(1));
        span.mark_at(Stage::Admission, t0 + Duration::from_micros(2));
        // First attempt.
        span.mark_at(Stage::Dispatch, t0 + Duration::from_micros(3));
        span.mark_at(Stage::Execute, t0 + Duration::from_micros(10));
        // Retry: dispatch/execute marks move later; time of the failed
        // attempt is attributed to the (repeated) dispatch stage.
        span.mark_at(Stage::Dispatch, t0 + Duration::from_micros(12));
        span.mark_at(Stage::Execute, t0 + Duration::from_micros(20));
        let end = t0 + Duration::from_micros(21);
        span.mark_at(Stage::Reply, end);
        let report = span.report(end);
        assert_eq!(report.stage_sum_ns(), report.total_ns);
        assert_eq!(report.stage(Stage::Dispatch), 10_000);
        assert_eq!(report.stage(Stage::Execute), 8_000);
    }

    #[test]
    fn marks_are_monotone_per_stage_when_marked_in_order() {
        let mut span = RequestSpan::begin();
        for stage in STAGES {
            span.mark(stage);
        }
        let mut prev = span.submitted();
        for stage in STAGES {
            let m = span.mark_of(stage).expect("marked");
            assert!(m >= prev, "stage {} mark went backwards", stage.name());
            prev = m;
        }
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["queue_wait", "admission", "dispatch", "execute", "reply"]
        );
    }
}
