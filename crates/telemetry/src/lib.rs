//! Observability layer for the SlabHash simulator.
//!
//! Three complementary views of a launch, all collected with the same
//! discipline as `PerfCounters` (private per-warp storage, merged once
//! after the launch, no hot-path synchronization beyond one relaxed
//! sequence counter):
//!
//! 1. **Traces** — structured launch → warp → op events recorded into
//!    per-executor ring buffers ([`WarpTracer`]) and flushed to a
//!    [`TraceSink`]. Exportable as JSON Lines and chrome://tracing
//!    `trace_event` JSON ([`Trace`]). Timestamps are logical sequence
//!    numbers, so a fixed chaos seed plus a sequential grid replays to a
//!    byte-identical stream.
//! 2. **Histograms** — log₂-bucketed distributions ([`LogHistogram`],
//!    [`Histograms`]) of chain length, warp rounds per op, CAS retries per
//!    op, and allocator resident-block hops, merged into every launch
//!    report.
//! 3. **Heatmaps** — per-bucket contention attribution ([`Heatmap`])
//!    fusing audit-side structure ([`BucketStat`]) with trace-side CAS
//!    retry counts.
//!
//! A fourth, instantaneous view — [`Gauge`] pressure gauges with watermark
//! thresholds — carries live resource levels (outstanding slabs, free-unit
//! headroom) from allocators to maintenance policies and soak tests.
//!
//! On top of those sit the *live* metrics plane:
//!
//! * **Registry** — a sharded, lock-free [`MetricsRegistry`] of named
//!   [`Counter`]s, [`GaugeMetric`]s, and per-worker-sharded
//!   [`HistogramMetric`]s, scrapable while the system runs.
//! * **Spans** — a [`RequestSpan`] minted per request with per-[`Stage`]
//!   wall-clock marks, collapsing into a [`SpanReport`] latency
//!   decomposition (queue-wait / admission / dispatch / execute / reply).
//! * **Exporter** — [`exporter::MetricsServer`] serves the registry as
//!   Prometheus text over a tiny std `TcpListener` thread, and
//!   [`exporter::JsonlSnapshots`] appends periodic JSON lines for headless
//!   runs.
//!
//! This crate is deliberately free of simulator dependencies; `simt` and
//! the table crates hook into it, not the other way round.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod exporter;
pub mod gauge;
pub mod heatmap;
pub mod histogram;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod trace;

pub use event::{EventKind, TraceEvent, LAUNCH_WARP};
pub use exporter::{scrape_text, JsonlSnapshots, MetricsServer};
pub use gauge::{Gauge, GaugeSnapshot, Watermark};
pub use heatmap::{BucketStat, Heatmap, HotBucket};
pub use histogram::{Histograms, LogHistogram, HISTOGRAM_BUCKETS};
pub use metrics::{Counter, GaugeMetric, HistogramMetric, HistogramSnapshot, MetricsRegistry};
pub use sink::{
    current_session, MemorySink, SessionHandle, TraceConfig, TraceSession, TraceSink, WarpTracer,
};
pub use span::{RequestSpan, SpanReport, Stage, STAGES, STAGE_COUNT};
pub use trace::Trace;
