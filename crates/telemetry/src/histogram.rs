//! Log₂-bucketed histograms for per-op work distributions.
//!
//! Counters tell you *how much* work a launch did; histograms tell you how
//! that work was *distributed* across operations. A [`LogHistogram`] is a
//! fixed-size array of power-of-two buckets — cheap enough to live in every
//! warp's context and be merged after the launch exactly like
//! `PerfCounters` blocks, with no allocation on the hot path.
//!
//! Bucket semantics: bucket 0 counts exact zeros, bucket `i ≥ 1` counts
//! values in `[2^(i−1), 2^i − 1]`, and the last bucket is a catch-all for
//! everything ≥ 2³². A chain length of 3 therefore lands in bucket 2
//! (range 2–3), 17 CAS retries land in bucket 5 (range 16–31), and so on.

/// Number of buckets in a [`LogHistogram`]: one zero bucket, 32 power-of-two
/// buckets, and one catch-all for values ≥ 2³².
pub const HISTOGRAM_BUCKETS: usize = 34;

/// A log₂-bucketed histogram of `u64` samples.
///
/// `Copy` on purpose: it lives inside per-warp contexts and launch reports
/// that are themselves plain-old-data, and merging is an element-wise add.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value lands in: 0 for zero, otherwise
    /// `min(33, bit_length(v))` so bucket `i` covers `[2^(i−1), 2^i − 1]`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Accumulates another histogram into this one (used when per-warp
    /// blocks are merged after a launch).
    pub fn merge(&mut self, other: &Self) {
        // Exhaustive destructuring: adding a field without merging it is a
        // compile error, same discipline as `PerfCounters::merge`.
        let Self {
            buckets,
            count,
            sum,
            max,
        } = other;
        for (dst, src) in self.buckets.iter_mut().zip(buckets.iter()) {
            *dst += *src;
        }
        self.count += count;
        self.sum += sum;
        self.max = self.max.max(*max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts (see module docs for bucket semantics).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Human-readable range label for bucket `i`, e.g. `"0"`, `"1"`,
    /// `"4–7"`, `"≥2^32"`.
    pub fn bucket_label(i: usize) -> String {
        match i {
            0 => "0".to_string(),
            1 => "1".to_string(),
            x if x < HISTOGRAM_BUCKETS - 1 => {
                format!("{}–{}", 1u64 << (x - 1), (1u64 << x) - 1)
            }
            _ => "≥2^32".to_string(),
        }
    }

    /// Renders the non-empty buckets as an aligned bar chart, one line per
    /// bucket, suitable for terminal output.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!(
            "{title}: n={} mean={:.2} max={}\n",
            self.count,
            self.mean(),
            self.max
        );
        if self.count == 0 {
            out.push_str("  (empty)\n");
            return out;
        }
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let bar_len = ((n as f64 / peak as f64) * 40.0).ceil() as usize;
            out.push_str(&format!(
                "  {:>9} {:>10} {}\n",
                Self::bucket_label(i),
                n,
                "#".repeat(bar_len.max(1))
            ));
        }
        out
    }
}

/// The fixed set of per-launch work histograms collected by the simulator.
///
/// Merged across warps after a launch exactly like `PerfCounters`, and
/// surfaced through the launch report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histograms {
    /// Slabs visited per finished operation (1 = resolved in the base slab).
    pub chain_slabs: LogHistogram,
    /// Warp rounds a finished operation was the source lane's work for.
    pub rounds_per_op: LogHistogram,
    /// CAS failures charged to a finished operation before it completed.
    pub retries_per_op: LogHistogram,
    /// Resident-block hops the allocator made per successful allocation.
    pub resident_hops: LogHistogram,
    /// Ingress submission-queue depth sampled at each broker batch
    /// dispatch (empty unless an ingress broker fed this report).
    pub queue_depth: LogHistogram,
}

impl Histograms {
    /// Accumulates another set of histograms into this one.
    pub fn merge(&mut self, other: &Self) {
        // Exhaustive destructuring: a new histogram field that is not
        // merged here fails to compile.
        let Self {
            chain_slabs,
            rounds_per_op,
            retries_per_op,
            resident_hops,
            queue_depth,
        } = other;
        self.chain_slabs.merge(chain_slabs);
        self.rounds_per_op.merge(rounds_per_op);
        self.retries_per_op.merge(retries_per_op);
        self.resident_hops.merge(resident_hops);
        self.queue_depth.merge(queue_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(7), 3);
        assert_eq!(LogHistogram::bucket_index(8), 4);
        assert_eq!(LogHistogram::bucket_index(u32::MAX as u64), 32);
        assert_eq!(LogHistogram::bucket_index(1 << 32), 33);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 33);
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 3, 8, 8, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[4], 2); // the two 8s
    }

    #[test]
    fn merge_is_element_wise_add() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(5);
        b.record(5);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1010);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.buckets()[LogHistogram::bucket_index(5)], 2);
    }

    #[test]
    fn histograms_merge_covers_every_field() {
        let mut a = Histograms::default();
        let mut b = Histograms::default();
        b.chain_slabs.record(1);
        b.rounds_per_op.record(2);
        b.retries_per_op.record(3);
        b.resident_hops.record(4);
        b.queue_depth.record(5);
        a.merge(&b);
        assert_eq!(a.chain_slabs.count(), 1);
        assert_eq!(a.rounds_per_op.sum(), 2);
        assert_eq!(a.retries_per_op.sum(), 3);
        assert_eq!(a.resident_hops.sum(), 4);
        assert_eq!(a.queue_depth.sum(), 5);
    }

    #[test]
    fn labels_and_render_are_stable() {
        assert_eq!(LogHistogram::bucket_label(0), "0");
        assert_eq!(LogHistogram::bucket_label(1), "1");
        assert_eq!(LogHistogram::bucket_label(3), "4–7");
        assert_eq!(LogHistogram::bucket_label(33), "≥2^32");
        let mut h = LogHistogram::new();
        h.record(6);
        let r = h.render("chain");
        assert!(r.contains("chain"));
        assert!(r.contains("4–7"));
        assert!(LogHistogram::new().render("x").contains("(empty)"));
    }
}
