//! Per-bucket contention attribution: which buckets are hot, and why.
//!
//! A [`Heatmap`] fuses two sources: structural per-bucket statistics from a
//! table audit ([`BucketStat`]: live elements, tombstones, chain depth) and
//! behavioural CAS-retry attribution from a launch trace
//! ([`crate::Trace::cas_failures_by_bucket`]). Each bucket gets a scalar
//! *heat score*:
//!
//! ```text
//! score = cas_failures + tombstones + 16 · (chain_slabs − 1)
//! ```
//!
//! Chain depth dominates by design — every extra slab in a chain costs
//! another 128-byte coalesced read per probing round for every operation
//! that hashes there, whereas a tombstone merely pollutes one lane of a
//! scan and a CAS failure costs one retried atomic. The weights make one
//! extra chained slab comparable to sixteen retried CASes, roughly the
//! cost ratio in the calibrated roofline model.

use crate::histogram::LogHistogram;

/// Structural statistics for one bucket, produced by a table audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketStat {
    /// Bucket index.
    pub bucket: u32,
    /// Live (non-tombstone) elements stored in the bucket's chain.
    pub live: u32,
    /// Tombstoned slots awaiting reuse.
    pub tombstones: u32,
    /// Slabs in the chain, including the base slab (≥ 1 for a valid
    /// bucket).
    pub chain_slabs: u32,
}

/// One heatmap row: a bucket's structure, its attributed CAS failures, and
/// the combined heat score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotBucket {
    /// The bucket's structural statistics.
    pub stat: BucketStat,
    /// CAS failures attributed to this bucket by the trace (0 when no
    /// trace was supplied).
    pub cas_failures: u64,
    /// Combined heat score (see module docs).
    pub score: u64,
    /// The ownership shard this bucket's range maps to under sharded
    /// dispatch, once [`Heatmap::assign_shards`] has run (`None` before).
    pub shard: Option<u32>,
}

impl HotBucket {
    fn scored(stat: BucketStat, cas_failures: u64, shard: Option<u32>) -> Self {
        let score =
            cas_failures + stat.tombstones as u64 + 16 * stat.chain_slabs.saturating_sub(1) as u64;
        Self {
            stat,
            cas_failures,
            score,
            shard,
        }
    }
}

/// A per-bucket contention heatmap.
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    rows: Vec<HotBucket>,
}

impl Heatmap {
    /// Builds a heatmap from audit statistics alone (no CAS attribution —
    /// add it with [`Heatmap::attribute_cas_failures`]).
    pub fn new(stats: &[BucketStat]) -> Self {
        Self {
            rows: stats.iter().map(|&s| HotBucket::scored(s, 0, None)).collect(),
        }
    }

    /// Folds trace-side per-bucket CAS-retry totals (as returned by
    /// [`crate::Trace::cas_failures_by_bucket`]) into the scores.
    /// Buckets outside the audited range are ignored.
    pub fn attribute_cas_failures(&mut self, by_bucket: &[(u32, u64)]) {
        for &(bucket, n) in by_bucket {
            if let Some(row) = self.rows.iter_mut().find(|r| r.stat.bucket == bucket) {
                *row = HotBucket::scored(row.stat, row.cas_failures + n, row.shard);
            }
        }
    }

    /// Labels every row with the ownership shard its bucket belongs to
    /// under sharded dispatch over `shards` executors, adding the `shard`
    /// column to [`render_top_k`](Self::render_top_k) and enabling
    /// [`cas_failures_by_shard`](Self::cas_failures_by_shard).
    ///
    /// The arithmetic mirrors the dispatcher's contiguous-range shard map
    /// (`shard_of(b) = ⌊b·S/N⌋` over `N` audited buckets) — duplicated here
    /// because the telemetry crate sits *below* the execution substrate in
    /// the dependency order and cannot import it.
    pub fn assign_shards(&mut self, shards: u32) {
        let items = (self.rows.len() as u32).max(1);
        let shards = shards.clamp(1, items);
        for row in &mut self.rows {
            let shard = (u64::from(row.stat.bucket) * u64::from(shards) / u64::from(items)) as u32;
            row.shard = Some(shard.min(shards - 1));
        }
    }

    /// Per-shard CAS-failure totals, indexed by shard id. Empty until
    /// [`assign_shards`](Self::assign_shards) has run. The interesting
    /// signal for the sharded dispatcher: under exclusive bucket ownership
    /// every shard's total should collapse toward zero.
    pub fn cas_failures_by_shard(&self) -> Vec<u64> {
        let shards = match self.rows.iter().filter_map(|r| r.shard).max() {
            Some(max) => max as usize + 1,
            None => return Vec::new(),
        };
        let mut totals = vec![0u64; shards];
        for row in &self.rows {
            if let Some(s) = row.shard {
                totals[s as usize] += row.cas_failures;
            }
        }
        totals
    }

    /// All rows, in bucket order.
    pub fn rows(&self) -> &[HotBucket] {
        &self.rows
    }

    /// The `k` hottest buckets, hottest first (ties broken by bucket id
    /// for determinism).
    pub fn top_k(&self, k: usize) -> Vec<HotBucket> {
        let mut sorted = self.rows.clone();
        sorted.sort_by(|a, b| b.score.cmp(&a.score).then(a.stat.bucket.cmp(&b.stat.bucket)));
        sorted.truncate(k);
        sorted
    }

    /// Total CAS failures attributed across all buckets.
    pub fn total_cas_failures(&self) -> u64 {
        self.rows.iter().map(|r| r.cas_failures).sum()
    }

    /// Distribution of chain depths across all buckets.
    pub fn chain_histogram(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for r in &self.rows {
            h.record(r.stat.chain_slabs as u64);
        }
        h
    }

    /// Renders the top-`k` hottest buckets as an aligned table. Once
    /// [`assign_shards`](Self::assign_shards) has run, an owning-shard
    /// column is appended so hot buckets can be read against the executor
    /// that serializes them.
    pub fn render_top_k(&self, k: usize) -> String {
        let sharded = self.rows.iter().any(|r| r.shard.is_some());
        let mut out = String::from(
            "  bucket       score   cas-fail     live     tomb    chain",
        );
        if sharded {
            out.push_str("    shard");
        }
        out.push('\n');
        for row in self.top_k(k) {
            out.push_str(&format!(
                "  {:>6}  {:>10}  {:>9}  {:>7}  {:>7}  {:>7}",
                row.stat.bucket,
                row.score,
                row.cas_failures,
                row.stat.live,
                row.stat.tombstones,
                row.stat.chain_slabs
            ));
            if sharded {
                match row.shard {
                    Some(s) => out.push_str(&format!("  {s:>7}")),
                    None => out.push_str(&format!("  {:>7}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders the whole table as a one-line intensity strip of `width`
    /// cells: buckets are grouped into cells, each cell showing the *max*
    /// heat score of its group on a 9-level scale (`" "` cold → `"█"`
    /// hottest, scaled to the global max).
    pub fn render_strip(&self, width: usize) -> String {
        const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if self.rows.is_empty() || width == 0 {
            return String::new();
        }
        let peak = self.rows.iter().map(|r| r.score).max().unwrap_or(0);
        let width = width.min(self.rows.len());
        let per_cell = self.rows.len().div_ceil(width);
        let mut out = String::with_capacity(width);
        for cell in self.rows.chunks(per_cell) {
            let m = cell.iter().map(|r| r.score).max().unwrap_or(0);
            let level = if peak == 0 {
                0
            } else {
                ((m as f64 / peak as f64) * (LEVELS.len() - 1) as f64).round() as usize
            };
            out.push(LEVELS[level.min(LEVELS.len() - 1)]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Vec<BucketStat> {
        vec![
            BucketStat {
                bucket: 0,
                live: 10,
                tombstones: 0,
                chain_slabs: 1,
            },
            BucketStat {
                bucket: 1,
                live: 40,
                tombstones: 5,
                chain_slabs: 3,
            },
            BucketStat {
                bucket: 2,
                live: 12,
                tombstones: 2,
                chain_slabs: 1,
            },
        ]
    }

    #[test]
    fn score_formula_matches_docs() {
        let h = Heatmap::new(&stats());
        // bucket 1: 0 cas + 5 tombstones + 16·(3−1) = 37
        assert_eq!(h.rows()[1].score, 37);
        // bucket 0: base slab only, no tombstones → 0
        assert_eq!(h.rows()[0].score, 0);
    }

    #[test]
    fn cas_attribution_raises_scores() {
        let mut h = Heatmap::new(&stats());
        h.attribute_cas_failures(&[(0, 100), (2, 1), (99, 5)]);
        assert_eq!(h.rows()[0].cas_failures, 100);
        assert_eq!(h.rows()[0].score, 100);
        assert_eq!(h.total_cas_failures(), 101);
        let top = h.top_k(2);
        assert_eq!(top[0].stat.bucket, 0);
        assert_eq!(top[1].stat.bucket, 1);
    }

    #[test]
    fn top_k_breaks_ties_by_bucket_id() {
        let h = Heatmap::new(&[
            BucketStat {
                bucket: 5,
                live: 0,
                tombstones: 1,
                chain_slabs: 1,
            },
            BucketStat {
                bucket: 2,
                live: 0,
                tombstones: 1,
                chain_slabs: 1,
            },
        ]);
        let top = h.top_k(2);
        assert_eq!(top[0].stat.bucket, 2);
        assert_eq!(top[1].stat.bucket, 5);
    }

    #[test]
    fn renderings_are_shaped_sensibly() {
        let mut h = Heatmap::new(&stats());
        h.attribute_cas_failures(&[(1, 50)]);
        let table = h.render_top_k(2);
        assert_eq!(table.lines().count(), 3, "header + 2 rows");
        assert!(table.contains("cas-fail"));
        let strip = h.render_strip(3);
        assert_eq!(strip.chars().count(), 3);
        assert_eq!(strip.chars().nth(1), Some('█'), "bucket 1 is hottest");
        assert_eq!(Heatmap::default().render_strip(8), "");
    }

    #[test]
    fn shard_assignment_is_contiguous_and_balanced() {
        let stats: Vec<BucketStat> = (0..10)
            .map(|b| BucketStat {
                bucket: b,
                live: 0,
                tombstones: 0,
                chain_slabs: 1,
            })
            .collect();
        let mut h = Heatmap::new(&stats);
        assert!(h.cas_failures_by_shard().is_empty(), "no shards before assign");
        h.assign_shards(4);
        let shards: Vec<u32> = h.rows().iter().map(|r| r.shard.unwrap()).collect();
        // ⌊b·4/10⌋: contiguous, non-decreasing, every shard non-empty.
        assert_eq!(shards, vec![0, 0, 0, 1, 1, 2, 2, 2, 3, 3]);
    }

    #[test]
    fn cas_failures_roll_up_by_shard() {
        let mut h = Heatmap::new(&stats());
        h.assign_shards(2);
        h.attribute_cas_failures(&[(0, 7), (1, 5), (2, 11)]);
        // 3 buckets over 2 shards: ⌊b·2/3⌋ puts {0, 1} on shard 0 and {2}
        // on shard 1.
        assert_eq!(h.cas_failures_by_shard(), vec![12, 11]);
        assert_eq!(h.total_cas_failures(), 23);
    }

    #[test]
    fn shard_column_appears_only_after_assignment() {
        let mut h = Heatmap::new(&stats());
        assert!(!h.render_top_k(3).contains("shard"));
        h.assign_shards(3);
        let table = h.render_top_k(3);
        assert!(table.contains("shard"));
        assert_eq!(table.lines().count(), 4, "header + 3 rows");
    }

    #[test]
    fn assign_shards_clamps_to_bucket_count() {
        let mut h = Heatmap::new(&stats());
        h.assign_shards(64);
        let shards: Vec<u32> = h.rows().iter().map(|r| r.shard.unwrap()).collect();
        // More shards than buckets clamps to one bucket per shard.
        assert_eq!(shards, vec![0, 1, 2]);
    }

    #[test]
    fn chain_histogram_counts_buckets() {
        let h = Heatmap::new(&stats());
        let ch = h.chain_histogram();
        assert_eq!(ch.count(), 3);
        assert_eq!(ch.max(), 3);
    }
}
