//! Serving the metrics plane: a Prometheus text endpoint and periodic JSONL
//! snapshots.
//!
//! [`MetricsServer`] is a deliberately tiny HTTP/1.1 responder on a std
//! `TcpListener`: one accept thread, one short-lived response per
//! connection, every path answered with the current
//! [`MetricsRegistry`] scrape in text exposition
//! format 0.0.4. No async runtime, no external dependency — a scrape is a
//! cold path and a sequential write of a few kilobytes.
//!
//! [`JsonlSnapshots`] covers headless runs (CI, soaks, batch jobs) where
//! nothing will come scrape: a background thread appends one JSON line per
//! interval to a file, so a run that dies still leaves its metric history
//! behind.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::MetricsRegistry;

/// A running Prometheus-text endpoint over a [`MetricsRegistry`].
///
/// Bind with [`MetricsServer::serve`]; scrape with
/// `curl http://<addr>/metrics`; stop with [`MetricsServer::shutdown`] (or
/// drop — the accept thread is detached-joined either way).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// starts the accept thread serving `registry`.
    pub fn serve(addr: &str, registry: Arc<MetricsRegistry>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("telemetry-metrics-exporter".into())
            .spawn(move || accept_loop(&listener, &registry, &stop_flag))?;
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept() by connecting once; failure is fine (the
        // listener may already be gone).
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, registry: &MetricsRegistry, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // One request per connection, best effort: a failed scrape hurts
        // nobody but the scraper.
        let _ = respond(stream, registry);
    }
}

fn respond(mut stream: TcpStream, registry: &MetricsRegistry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Drain the request head (we answer every method/path identically, so
    // only "did the client finish sending headers" matters).
    let mut buf = [0u8; 4096];
    let mut seen = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() >= 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = registry.render_prometheus();
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Scrapes `http://addr/metrics` once over a plain TCP connection and
/// returns the response body. A convenience for examples and tests that
/// want to self-scrape without shelling out to curl.
pub fn scrape_text(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: metrics\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "no HTTP header/body separator in exporter response",
        )),
    }
}

/// A background thread appending one JSON snapshot line per interval.
///
/// Timestamps are milliseconds since the loop started — relative, so
/// snapshot files diff cleanly across runs.
#[derive(Debug)]
pub struct JsonlSnapshots {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl JsonlSnapshots {
    /// Starts snapshotting `registry` into `path` every `interval`. The
    /// file is created (truncated) immediately with one initial line, so
    /// even a short run leaves evidence; a final line is written on
    /// shutdown.
    pub fn start(
        path: impl Into<PathBuf>,
        registry: Arc<MetricsRegistry>,
        interval: Duration,
    ) -> std::io::Result<Self> {
        let path = path.into();
        let mut file = std::fs::File::create(&path)?;
        let started = Instant::now();
        file.write_all(registry.render_jsonl(0).as_bytes())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let interval = interval.max(Duration::from_millis(1));
        let thread = std::thread::Builder::new()
            .name("telemetry-jsonl-snapshots".into())
            .spawn(move || {
                let mut next = started + interval;
                loop {
                    // Sleep in short slices so shutdown is prompt even with
                    // long intervals.
                    while Instant::now() < next {
                        if stop_flag.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5).min(interval));
                    }
                    let ts = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
                    let _ = file.write_all(registry.render_jsonl(ts).as_bytes());
                    if stop_flag.load(Ordering::Acquire) {
                        let _ = file.flush();
                        return;
                    }
                    next += interval;
                }
            })?;
        Ok(Self {
            stop,
            thread: Some(thread),
            path,
        })
    }

    /// The snapshot file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Writes one final snapshot line, stops the loop, and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for JsonlSnapshots {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_prometheus_text_over_http() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("hits_total", "hits").add(3);
        registry.gauge("depth", "queue depth").set(5);
        let server = MetricsServer::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let body = scrape_text(server.local_addr()).unwrap();
        assert!(body.contains("# TYPE hits_total counter"));
        assert!(body.contains("hits_total 3"));
        assert!(body.contains("depth 5"));
        // A second scrape sees fresh values: the endpoint is live, not a
        // point-in-time dump.
        registry.counter("hits_total", "hits").add(1);
        let body = scrape_text(server.local_addr()).unwrap();
        assert!(body.contains("hits_total 4"));
        server.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_and_idempotent_under_drop() {
        let registry = Arc::new(MetricsRegistry::new());
        let server = MetricsServer::serve("127.0.0.1:0", registry).unwrap();
        let addr = server.local_addr();
        drop(server);
        // The port is released: a fresh bind to the same address works.
        let _rebind = TcpListener::bind(addr).expect("exporter released its port");
    }

    #[test]
    fn jsonl_snapshots_append_over_time() {
        let registry = Arc::new(MetricsRegistry::new());
        registry.counter("ticks_total", "ticks").add(2);
        let dir = std::env::temp_dir().join(format!("metrics-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        let snaps =
            JsonlSnapshots::start(&path, Arc::clone(&registry), Duration::from_millis(10))
                .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        snaps.shutdown();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert!(lines.len() >= 2, "initial + final line at minimum: {lines:?}");
        for line in &lines {
            assert!(line.starts_with("{\"ts_ms\":"), "bad snapshot line: {line}");
            assert!(line.contains("\"ticks_total\""));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
