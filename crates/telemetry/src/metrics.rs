//! A sharded, lock-free metrics registry for live scraping.
//!
//! Traces and launch histograms answer questions *after* a run; the
//! registry answers them *during* one. It holds three metric kinds —
//! monotonic [`Counter`]s, instantaneous [`GaugeMetric`]s, and log₂-bucketed
//! [`HistogramMetric`]s — registered once by name (plus optional labels) and
//! updated from any thread through cheap cloneable handles.
//!
//! The discipline mirrors `PerfCounters`: the *hot path* is wait-free (a
//! relaxed atomic add or store, no locks, no allocation). Histograms go one
//! step further and shard their bucket arrays per worker thread, so
//! concurrent recorders do not bounce one cache line; shards are summed only
//! at scrape time. The registry's internal mutex guards registration and
//! scraping — both cold paths — never updates.
//!
//! Scrape formats:
//! * [`MetricsRegistry::render_prometheus`] — Prometheus text exposition
//!   format 0.0.4 (`# HELP` / `# TYPE`, cumulative `_bucket{le=...}`
//!   histogram series), served over HTTP by
//!   [`MetricsServer`](crate::exporter::MetricsServer).
//! * [`MetricsRegistry::render_jsonl`] — one JSON object per scrape, for
//!   periodic headless snapshots
//!   ([`JsonlSnapshots`](crate::exporter::JsonlSnapshots)).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::HISTOGRAM_BUCKETS;

/// Hands each thread a stable small integer the first time it touches a
/// sharded histogram; shard choice is this id modulo the shard count.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Self {
        Self {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct GaugeMetric {
    cell: Arc<AtomicU64>,
}

impl GaugeMetric {
    fn new() -> Self {
        Self {
            cell: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One histogram shard: a private bucket array one worker thread (mostly)
/// owns, so concurrent `record` calls do not contend on shared cache lines.
#[derive(Debug)]
struct HistShard {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram with per-worker shards, merged at scrape time.
///
/// Bucket semantics match [`LogHistogram`](crate::LogHistogram): bucket 0
/// counts exact zeros, bucket `i ≥ 1` counts values in `[2^(i−1), 2^i − 1]`,
/// and the last bucket is the catch-all. `unit_scale` converts recorded
/// integers into the exported unit at render time (e.g. record nanoseconds,
/// export seconds with `unit_scale = 1e-9`).
#[derive(Debug, Clone)]
pub struct HistogramMetric {
    shards: Arc<Vec<HistShard>>,
    unit_scale: f64,
}

impl HistogramMetric {
    fn new(shards: usize, unit_scale: f64) -> Self {
        Self {
            shards: Arc::new((0..shards.max(1)).map(|_| HistShard::new()).collect()),
            unit_scale,
        }
    }

    /// Records one sample into this thread's shard.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[thread_slot() % self.shards.len()];
        let idx = crate::LogHistogram::bucket_index(value);
        shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Sums the shards into one snapshot: per-bucket counts, total count,
    /// and the raw (unscaled) sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for shard in self.shards.iter() {
            for (dst, src) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *dst += src.load(Ordering::Relaxed);
            }
            sum += shard.sum.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: buckets.iter().sum(),
            buckets,
            sum,
            unit_scale: self.unit_scale,
        }
    }

    /// The recorded-unit → exported-unit factor.
    pub fn unit_scale(&self) -> f64 {
        self.unit_scale
    }
}

/// A merged point-in-time copy of a [`HistogramMetric`].
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (non-cumulative; see `LogHistogram` semantics).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of raw recorded values (multiply by `unit_scale` for the
    /// exported unit).
    pub sum: u64,
    /// The recorded-unit → exported-unit factor.
    pub unit_scale: f64,
}

impl HistogramSnapshot {
    /// The inclusive upper bound of bucket `i` in the *exported* unit, or
    /// `None` for the final catch-all (`+Inf`) bucket.
    pub fn upper_bound(&self, i: usize) -> Option<f64> {
        if i + 1 >= HISTOGRAM_BUCKETS {
            None
        } else if i == 0 {
            Some(0.0)
        } else {
            Some(((1u128 << i) - 1) as f64 * self.unit_scale)
        }
    }
}

/// What kind of series a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Cell {
    Counter(Counter),
    Gauge(GaugeMetric),
    Histogram(HistogramMetric),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    cell: Cell,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

#[derive(Debug, Default)]
struct Inner {
    families: Vec<Family>,
}

/// The registry: named metric families, each holding one series per label
/// set. Registration is idempotent — asking for an existing (name, labels)
/// pair returns a handle to the same cell, so two subsystems can share a
/// metric without coordinating.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
    /// Shards used for newly registered histograms.
    hist_shards: usize,
}

/// Sanitizes a metric or label name to the Prometheus charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit). Invalid characters become
/// `_` so a sloppy caller degrades to an ugly name, never to invalid output.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a HELP line: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes a string for embedding in JSON output.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a bucket bound the way Prometheus expects: integers without a
/// trailing `.0`, everything else in plain decimal.
fn format_bound(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

impl MetricsRegistry {
    /// An empty registry with histogram shard count sized to the host.
    pub fn new() -> Self {
        let shards = std::thread::available_parallelism().map_or(4, |n| n.get()).min(16);
        Self::with_histogram_shards(shards)
    }

    /// An empty registry with an explicit histogram shard count (clamped to
    /// at least 1). Tests use 1 shard for deterministic layouts.
    pub fn with_histogram_shards(shards: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            hist_shards: shards.max(1),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        hist_scale: f64,
    ) -> Cell {
        let mut inner = self.inner.lock();
        let family = match inner.families.iter().position(|f| f.name == name) {
            Some(i) => &mut inner.families[i],
            None => {
                inner.families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                inner.families.last_mut().expect("just pushed")
            }
        };
        assert_eq!(
            family.kind, kind,
            "metric {name} re-registered with a different kind"
        );
        if let Some(s) = family
            .series
            .iter()
            .find(|s| s.labels.len() == labels.len()
                && s.labels.iter().zip(labels.iter()).all(|(a, b)| a.0 == b.0 && a.1 == b.1))
        {
            return s.cell.clone();
        }
        let cell = match kind {
            MetricKind::Counter => Cell::Counter(Counter::new()),
            MetricKind::Gauge => Cell::Gauge(GaugeMetric::new()),
            MetricKind::Histogram => {
                Cell::Histogram(HistogramMetric::new(self.hist_shards, hist_scale))
            }
        };
        family.series.push(Series {
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            cell: cell.clone(),
        });
        cell
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, 1.0) {
            Cell::Counter(c) => c,
            _ => unreachable!("registry returned mismatched cell"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> GaugeMetric {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> GaugeMetric {
        match self.register(name, help, MetricKind::Gauge, labels, 1.0) {
            Cell::Gauge(g) => g,
            _ => unreachable!("registry returned mismatched cell"),
        }
    }

    /// Registers (or finds) an unlabeled histogram recording raw integers.
    pub fn histogram(&self, name: &str, help: &str) -> HistogramMetric {
        self.histogram_with(name, help, &[], 1.0)
    }

    /// Registers (or finds) a histogram with labels and a unit scale
    /// (recorded integer × scale = exported value; e.g. record nanoseconds
    /// and pass `1e-9` to export seconds).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        unit_scale: f64,
    ) -> HistogramMetric {
        match self.register(name, help, MetricKind::Histogram, labels, unit_scale) {
            Cell::Histogram(h) => {
                // The first registration fixes the scale; sharing a series
                // under two different units would render nonsense.
                assert!(
                    (h.unit_scale() - unit_scale).abs() < f64::EPSILON,
                    "histogram {name} re-registered with a different unit scale"
                );
                h
            }
            _ => unreachable!("registry returned mismatched cell"),
        }
    }

    /// Renders every family in Prometheus text exposition format 0.0.4.
    ///
    /// Histogram series expand into cumulative `_bucket{le="..."}` lines
    /// (log₂ upper bounds in the exported unit, final bucket `+Inf`), plus
    /// `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for family in &inner.families {
            let name = sanitize_name(&family.name);
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.type_name()));
            for series in &family.series {
                match &series.cell {
                    Cell::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_block(&series.labels, None),
                            c.get()
                        ));
                    }
                    Cell::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_block(&series.labels, None),
                            g.get()
                        ));
                    }
                    Cell::Histogram(h) => {
                        let snap = h.snapshot();
                        let mut cumulative = 0u64;
                        for (i, &n) in snap.buckets.iter().enumerate() {
                            // Merge empty interior buckets into the next
                            // non-empty bound? No: emit every bound so the
                            // cumulativity is visible and testable.
                            cumulative += n;
                            let le = match snap.upper_bound(i) {
                                Some(b) => format_bound(b),
                                None => "+Inf".to_string(),
                            };
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                label_block(&series.labels, Some(("le", &le))),
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            label_block(&series.labels, None),
                            snap.sum as f64 * snap.unit_scale
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            label_block(&series.labels, None),
                            snap.count
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders one JSON object (a single line, newline-terminated) carrying
    /// every series: counters and gauges as values, histograms as
    /// `{count, sum}`. `ts_ms` is a caller-supplied timestamp so headless
    /// snapshot files are self-describing.
    pub fn render_jsonl(&self, ts_ms: u64) -> String {
        let inner = self.inner.lock();
        let mut entries: Vec<String> = Vec::new();
        for family in &inner.families {
            for series in &family.series {
                let labels = series
                    .labels
                    .iter()
                    .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
                    .collect::<Vec<_>>()
                    .join(",");
                let head = format!(
                    "{{\"name\":\"{}\",\"kind\":\"{}\",\"labels\":{{{labels}}}",
                    escape_json(&family.name),
                    family.kind.type_name()
                );
                let entry = match &series.cell {
                    Cell::Counter(c) => format!("{head},\"value\":{}}}", c.get()),
                    Cell::Gauge(g) => format!("{head},\"value\":{}}}", g.get()),
                    Cell::Histogram(h) => {
                        let snap = h.snapshot();
                        format!(
                            "{head},\"count\":{},\"sum\":{}}}",
                            snap.count,
                            snap.sum as f64 * snap.unit_scale
                        )
                    }
                };
                entries.push(entry);
            }
        }
        format!("{{\"ts_ms\":{ts_ms},\"metrics\":[{}]}}\n", entries.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ops_total", "ops");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("depth", "queue depth");
        g.set(7);
        assert_eq!(g.get(), 7);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total 5"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("depth 7"));
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("x_total", "x", &[("k", "v")]);
        let b = reg.counter_with("x_total", "x", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // A different label set is a different series.
        let c = reg.counter_with("x_total", "x", &[("k", "w")]);
        assert_eq!(c.get(), 0);
        assert_eq!(
            reg.render_prometheus().matches("# TYPE x_total").count(),
            1,
            "one family header for all series"
        );
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_are_refused() {
        let reg = MetricsRegistry::new();
        reg.counter("y", "y");
        reg.gauge("y", "y");
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_rendered_text() {
        let reg = MetricsRegistry::with_histogram_shards(2);
        let h = reg.histogram("lat", "latency");
        for v in [0, 1, 2, 3, 100, 1000, u64::MAX] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), HISTOGRAM_BUCKETS);
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "not cumulative: {counts:?}");
        assert_eq!(*counts.last().unwrap(), 7, "+Inf bucket counts everything");
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("lat_count 7"));
    }

    #[test]
    fn unit_scale_converts_bounds_and_sum() {
        let reg = MetricsRegistry::with_histogram_shards(1);
        let h = reg.histogram_with("dur_seconds", "d", &[], 1e-9);
        h.record(1_000_000_000); // 1s in ns
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!((snap.sum as f64 * snap.unit_scale - 1.0).abs() < 1e-12);
        // Bucket 1's bound is 1 ns = 1e-9 s.
        assert!((snap.upper_bound(1).unwrap() - 1e-9).abs() < 1e-18);
        assert!(snap.upper_bound(HISTOGRAM_BUCKETS - 1).is_none());
    }

    #[test]
    fn escaping_help_labels_and_names() {
        let reg = MetricsRegistry::new();
        let c = reg.counter_with(
            "weird name-total",
            "line1\nline2 \\ slash",
            &[("path", "a\"b\\c\nd")],
        );
        c.inc();
        let text = reg.render_prometheus();
        assert!(text.contains("# HELP weird_name_total line1\\nline2 \\\\ slash"));
        assert!(text.contains("weird_name_total{path=\"a\\\"b\\\\c\\nd\"} 1"));
        assert!(!text.contains("weird name"), "unsanitized name leaked");
    }

    #[test]
    fn jsonl_snapshot_carries_every_series() {
        let reg = MetricsRegistry::with_histogram_shards(1);
        reg.counter("a_total", "a").add(3);
        reg.gauge("b", "b").set(9);
        reg.histogram("c", "c").record(4);
        let line = reg.render_jsonl(1234);
        assert!(line.ends_with('\n'));
        assert!(line.contains("\"ts_ms\":1234"));
        assert!(line.contains("\"name\":\"a_total\",\"kind\":\"counter\""));
        assert!(line.contains("\"value\":3"));
        assert!(line.contains("\"name\":\"b\",\"kind\":\"gauge\""));
        assert!(line.contains("\"name\":\"c\",\"kind\":\"histogram\""));
        assert!(line.contains("\"count\":1,\"sum\":4"));
    }

    #[test]
    fn concurrent_writers_never_lose_samples() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("hits_total", "hits");
        let h = reg.histogram("work", "work");
        let threads = 8;
        let per = 5_000u64;
        let joins: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        c.inc();
                        h.record(i % 128);
                    }
                })
            })
            .collect();
        // Scrape concurrently: every render must be internally consistent
        // (cumulative buckets) even while writers run.
        for _ in 0..50 {
            let text = reg.render_prometheus();
            let counts: Vec<u64> = text
                .lines()
                .filter(|l| l.starts_with("work_bucket"))
                .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
                .collect();
            assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.get(), threads * per);
        assert_eq!(h.snapshot().count, threads * per);
    }
}
