//! Trace sessions, sinks, and the per-warp ring-buffer recorder.
//!
//! The design mirrors how the simulator already handles `PerfCounters`:
//! each warp records into private storage with no cross-warp communication,
//! and the private blocks are merged once, after the launch. Here the
//! private storage is a bounded ring of [`TraceEvent`]s per warp executor
//! ([`WarpTracer`]); when an executor finishes, the ring is flushed to the
//! session's shared [`TraceSink`]. The only shared hot-path state is one
//! relaxed atomic sequence counter, which doubles as the logical clock.
//!
//! Sessions are *thread-scoped*: [`TraceSession::begin`] installs the
//! session for the calling thread, and a `Grid` captures the launching
//! thread's innermost session and hands per-executor tracers to its worker
//! threads. Concurrent tests therefore cannot pollute each other's traces,
//! the same isolation story the chaos layer uses for fault plans.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, TraceEvent};
use crate::trace::Trace;

/// Tunables for a trace session.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Per-warp-executor ring capacity, in events. When a ring overflows
    /// the *oldest* events are dropped (and counted), keeping the tail of
    /// the launch — usually where the interesting contention is.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            ring_capacity: 65_536,
        }
    }
}

/// Destination for flushed trace events.
///
/// Implementations must tolerate concurrent calls: warp executors flush
/// their rings from worker threads as they finish.
pub trait TraceSink: Send + Sync {
    /// Accepts a batch of events. Batches arrive in flush order, not
    /// globally sorted — sort by [`TraceEvent::seq`] to reconstruct the
    /// logical timeline.
    fn consume(&self, batch: Vec<TraceEvent>);

    /// Informs the sink that `n` events were dropped by a full ring.
    fn note_dropped(&self, _n: u64) {}
}

/// The default in-memory sink backing [`TraceSession::begin`].
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
}

impl MemorySink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains the collected events and the dropped count.
    pub fn take(&self) -> (Vec<TraceEvent>, u64) {
        let events = std::mem::take(&mut *self.events.lock());
        let dropped = self.dropped.swap(0, Ordering::Relaxed);
        (events, dropped)
    }
}

impl TraceSink for MemorySink {
    fn consume(&self, mut batch: Vec<TraceEvent>) {
        self.events.lock().append(&mut batch);
    }

    fn note_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }
}

/// Session state shared between the owning [`TraceSession`], the grid's
/// [`SessionHandle`]s, and every [`WarpTracer`].
struct Shared {
    config: TraceConfig,
    sink: Arc<dyn TraceSink>,
    seq: AtomicU64,
}

thread_local! {
    /// Innermost-last stack of active sessions for this thread.
    static SESSIONS: RefCell<Vec<Arc<Shared>>> = const { RefCell::new(Vec::new()) };
}

/// An active trace session, scoped to the thread that began it.
///
/// Dropping the session detaches it; [`TraceSession::finish`] additionally
/// harvests the collected [`Trace`] when the session owns the default
/// in-memory sink.
pub struct TraceSession {
    shared: Arc<Shared>,
    memory: Option<Arc<MemorySink>>,
}

impl TraceSession {
    /// Begins a session on the calling thread, recording into an internal
    /// in-memory sink harvested by [`TraceSession::finish`].
    pub fn begin(config: TraceConfig) -> Self {
        let memory = Arc::new(MemorySink::new());
        let mut session = Self::begin_with_sink(config, memory.clone());
        session.memory = Some(memory);
        session
    }

    /// Begins a session that flushes into a caller-supplied sink
    /// (streaming to disk, filtering, test doubles, …).
    /// [`TraceSession::finish`] then returns an empty [`Trace`]; the events
    /// live wherever the sink put them.
    pub fn begin_with_sink(config: TraceConfig, sink: Arc<dyn TraceSink>) -> Self {
        let shared = Arc::new(Shared {
            config,
            sink,
            seq: AtomicU64::new(0),
        });
        SESSIONS.with(|s| s.borrow_mut().push(shared.clone()));
        Self {
            shared,
            memory: None,
        }
    }

    /// Detaches the session and returns the collected trace, sorted by
    /// logical timestamp. Empty for custom-sink sessions.
    pub fn finish(mut self) -> Trace {
        self.detach();
        match self.memory.take() {
            Some(memory) => {
                let (mut events, dropped) = memory.take();
                events.sort_unstable_by_key(|e| e.seq);
                Trace::new(events, dropped)
            }
            None => Trace::new(Vec::new(), 0),
        }
    }

    fn detach(&mut self) {
        SESSIONS.with(|s| {
            s.borrow_mut()
                .retain(|shared| !Arc::ptr_eq(shared, &self.shared));
        });
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        self.detach();
    }
}

/// A cloneable, thread-safe handle to an active session. The grid captures
/// one on the launching thread and distributes tracers to its executors.
#[derive(Clone)]
pub struct SessionHandle {
    shared: Arc<Shared>,
}

impl SessionHandle {
    /// A fresh per-executor recorder bound to this session.
    pub fn tracer(&self) -> WarpTracer {
        WarpTracer {
            shared: self.shared.clone(),
            ring: VecDeque::with_capacity(self.shared.config.ring_capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Emits a single launch-scope event straight to the sink, bypassing
    /// any ring (used for `launch_begin` / `launch_end`).
    pub fn emit(&self, warp: u32, kind: EventKind) {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.shared.sink.consume(vec![TraceEvent { seq, warp, kind }]);
    }
}

/// The calling thread's innermost active session, if any.
pub fn current_session() -> Option<SessionHandle> {
    SESSIONS.with(|s| {
        s.borrow()
            .last()
            .map(|shared| SessionHandle {
                shared: shared.clone(),
            })
    })
}

/// A per-warp-executor event recorder: a bounded ring flushed to the
/// session sink when the executor finishes (or on explicit
/// [`WarpTracer::flush`]).
pub struct WarpTracer {
    shared: Arc<Shared>,
    ring: VecDeque<TraceEvent>,
    dropped: u64,
}

impl WarpTracer {
    /// Records one event, stamping it with the session's next logical
    /// timestamp. On overflow the oldest ringed event is dropped and
    /// counted.
    pub fn record(&mut self, warp: u32, kind: EventKind) {
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        if self.ring.len() >= self.shared.config.ring_capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(TraceEvent { seq, warp, kind });
    }

    /// Flushes ringed events (and the overflow count) to the sink.
    pub fn flush(&mut self) {
        if !self.ring.is_empty() {
            self.shared.sink.consume(self.ring.drain(..).collect());
        }
        if self.dropped > 0 {
            self.shared.sink.note_dropped(self.dropped);
            self.dropped = 0;
        }
    }
}

impl Drop for WarpTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

impl std::fmt::Debug for WarpTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarpTracer")
            .field("ringed", &self.ring.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_session_means_no_handle() {
        assert!(current_session().is_none());
    }

    #[test]
    fn session_scopes_to_thread_and_nests() {
        let outer = TraceSession::begin(TraceConfig::default());
        assert!(current_session().is_some());

        // Another thread does not see this thread's session.
        std::thread::scope(|s| {
            s.spawn(|| assert!(current_session().is_none()));
        });

        {
            let inner = TraceSession::begin(TraceConfig::default());
            let handle = current_session().unwrap();
            handle.emit(0, EventKind::WarpBegin);
            let trace = inner.finish();
            assert_eq!(trace.events().len(), 1);
        }

        // Inner finished; outer is current again and saw nothing.
        assert!(current_session().is_some());
        let trace = outer.finish();
        assert!(trace.events().is_empty());
        assert!(current_session().is_none());
    }

    #[test]
    fn tracer_flushes_on_drop_with_global_sequence() {
        let session = TraceSession::begin(TraceConfig::default());
        let handle = current_session().unwrap();
        let mut t0 = handle.tracer();
        let mut t1 = handle.tracer();
        t0.record(0, EventKind::WarpBegin);
        t1.record(1, EventKind::WarpBegin);
        t0.record(0, EventKind::WarpEnd { ops: 1 });
        drop(t0);
        drop(t1);
        let trace = session.finish();
        let seqs: Vec<u64> = trace.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "sorted, globally unique timestamps");
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let session = TraceSession::begin(TraceConfig { ring_capacity: 4 });
        let handle = current_session().unwrap();
        let mut t = handle.tracer();
        for i in 0..10 {
            t.record(0, EventKind::WarpEnd { ops: i });
        }
        t.flush();
        let trace = session.finish();
        assert_eq!(trace.events().len(), 4);
        assert_eq!(trace.dropped(), 6);
        // The survivors are the newest events.
        assert!(matches!(
            trace.events()[0].kind,
            EventKind::WarpEnd { ops: 6 }
        ));
    }

    #[test]
    fn custom_sink_receives_batches() {
        struct Counting(AtomicU64);
        impl TraceSink for Counting {
            fn consume(&self, batch: Vec<TraceEvent>) {
                self.0.fetch_add(batch.len() as u64, Ordering::Relaxed);
            }
        }
        let sink = Arc::new(Counting(AtomicU64::new(0)));
        let session = TraceSession::begin_with_sink(TraceConfig::default(), sink.clone());
        let handle = current_session().unwrap();
        let mut t = handle.tracer();
        t.record(0, EventKind::WarpBegin);
        t.record(0, EventKind::WarpEnd { ops: 0 });
        t.flush();
        let trace = session.finish();
        assert!(trace.events().is_empty(), "custom sink keeps the events");
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
    }
}
