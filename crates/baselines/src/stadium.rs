//! Stadium hashing (Khorasani et al., PACT 2015 — paper ref. 15), the other
//! §II related-work baseline.
//!
//! Stadium hashing splits the structure in two: a compact **ticket board**
//! (a bit per slot, fitting in fast memory) plus the main key–value table.
//! Insertion claims a slot by atomically setting its ticket bit — "an
//! insertion in this method requires one atomic operation and a regular
//! memory write" — and probes by double hashing on collisions. A search
//! first consults the ticket board and only then reads the table slot —
//! "a search operation in stadium hashing requires at least two memory
//! reads", which is exactly why the paper concludes it cannot compete with
//! CUDPP's single-read searches.
//!
//! One simplification (documented in DESIGN.md §7): the original is
//! built for out-of-core tables and adds ticket *info bits* that prune
//! out-of-core accesses; in-core, the board degenerates to the occupancy
//! bit per slot modeled here.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use simt::{pack_pair, unpack_pair, Grid, LaunchReport, PerfCounters};

const EMPTY_SLOT: u64 = u64::MAX;
const P: u64 = 4_294_967_291;

/// Smallest prime ≥ n (trial division; used once at construction).
fn next_prime(mut n: usize) -> usize {
    fn is_prime(x: usize) -> bool {
        if x < 4 {
            return x >= 2;
        }
        if x.is_multiple_of(2) {
            return false;
        }
        let mut d = 3;
        while d * d <= x {
            if x.is_multiple_of(d) {
                return false;
            }
            d += 2;
        }
        true
    }
    while !is_prime(n) {
        n += 1;
    }
    n
}

/// The stadium hash table: ticket board + main table.
pub struct StadiumHash {
    tickets: Vec<AtomicU32>,
    slots: Vec<AtomicU64>,
    a1: u64,
    b1: u64,
    a2: u64,
    max_probes: u32,
}

impl StadiumHash {
    /// A table sized for `n` elements at `load_factor`. The slot count is
    /// rounded up to a prime so the double-hashing step is always coprime
    /// to it (every probe sequence covers the whole table).
    pub fn new(n: usize, load_factor: f64, seed: u64) -> Self {
        assert!(n > 0 && load_factor > 0.0 && load_factor < 1.0);
        let size = next_prime(((n as f64 / load_factor).ceil() as usize).max(8));
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        Self {
            tickets: (0..size.div_ceil(32)).map(|_| AtomicU32::new(0)).collect(),
            slots: (0..size).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            a1: 1 + next() % (P - 1),
            b1: next() % P,
            // Double-hash step must be odd/non-zero to cover the table.
            a2: 1 + next() % (P - 1),
            max_probes: (size as u32).max(64),
        }
    }

    /// Table slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Device bytes (board + table).
    pub fn device_bytes(&self) -> u64 {
        (self.tickets.len() * 4 + self.slots.len() * 8) as u64
    }

    /// The compact ticket board's bytes alone (it is the part the original
    /// keeps in fast/in-core memory).
    pub fn ticket_board_bytes(&self) -> u64 {
        (self.tickets.len() * 4) as u64
    }

    /// Stored elements (host-side scan of the board).
    pub fn len(&self) -> usize {
        self.tickets
            .iter()
            .map(|w| w.load(Ordering::Acquire).count_ones() as usize)
            .sum()
    }

    /// True when no element is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn start(&self, key: u32) -> usize {
        (((self.a1 * key as u64 + self.b1) % P) % self.slots.len() as u64) as usize
    }

    /// Double-hashing step (made odd so every slot is eventually visited in
    /// a power-of-two-free table; we also force ≥ 1).
    #[inline]
    fn step(&self, key: u32) -> usize {
        1 + (((self.a2 * key as u64) % P) % (self.slots.len() as u64 - 1)) as usize
    }

    /// Claims `slot`'s ticket bit. `Ok` means the slot is ours to write.
    #[inline]
    fn claim_ticket(&self, slot: usize, c: &mut PerfCounters) -> bool {
        let word = &self.tickets[slot / 32];
        let bit = 1u32 << (slot % 32);
        c.atomics += 1;
        word.fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    #[inline]
    fn ticket_set(&self, slot: usize, c: &mut PerfCounters) -> bool {
        // The board is tiny; still a memory access the search must make.
        c.sector_reads += 1;
        self.tickets[slot / 32].load(Ordering::Acquire) & (1 << (slot % 32)) != 0
    }

    /// Per-thread insertion: probe via double hashing, claim the first free
    /// ticket, then plainly write the pair ("one atomic operation and a
    /// regular memory write").
    fn insert_one(&self, key: u32, value: u32, c: &mut PerfCounters) -> Result<(), ()> {
        let size = self.slots.len();
        let mut pos = self.start(key);
        let step = self.step(key);
        for _ in 0..self.max_probes {
            if !self.ticket_set(pos, c)
                && self.claim_ticket(pos, c) {
                    c.sector_writes += 1;
                    self.slots[pos].store(pack_pair(key, value), Ordering::Release);
                    return Ok(());
                }
                // Lost the ticket race: fall through and keep probing.
            pos = (pos + step) % size;
        }
        Err(())
    }

    /// Bulk build, one element per thread.
    pub fn bulk_build(
        &self,
        pairs: &[(u32, u32)],
        grid: &Grid,
    ) -> Result<LaunchReport, &'static str> {
        assert!(pairs.len() <= self.slots.len(), "over capacity");
        let failed = std::sync::atomic::AtomicUsize::new(0);
        let mut items = pairs.to_vec();
        let report = grid.launch(&mut items, |ctx, chunk| {
            for &mut (k, v) in chunk {
                if self.insert_one(k, v, &mut ctx.counters).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                ctx.counters.ops += 1;
            }
        });
        if failed.load(Ordering::Acquire) == 0 {
            Ok(report)
        } else {
            Err("stadium probe budget exhausted")
        }
    }

    /// Searches one key: per probe, one ticket-board read + (when the
    /// ticket is set) one table read — the "at least two memory reads".
    ///
    /// Because insertion writes the pair *after* the ticket (two separate
    /// plain accesses), a concurrent reader can observe a claimed ticket
    /// with the pair still empty; we treat that as "keep probing", which is
    /// also what the original's two-phase (build, then search) usage model
    /// guarantees never happens.
    pub fn search_one(&self, key: u32, c: &mut PerfCounters) -> Option<u32> {
        let size = self.slots.len();
        let mut pos = self.start(key);
        let step = self.step(key);
        for _ in 0..self.max_probes {
            if !self.ticket_set(pos, c) {
                return None; // unclaimed ticket terminates the probe chain
            }
            c.sector_reads += 1;
            let slot = self.slots[pos].load(Ordering::Acquire);
            if slot != EMPTY_SLOT {
                let (k, v) = unpack_pair(slot);
                if k == key {
                    return Some(v);
                }
            }
            pos = (pos + step) % size;
        }
        None
    }

    /// Bulk search, one query per thread.
    pub fn bulk_search(&self, keys: &[u32], grid: &Grid) -> (Vec<Option<u32>>, LaunchReport) {
        let mut items: Vec<(u32, Option<u32>)> = keys.iter().map(|&k| (k, None)).collect();
        let report = grid.launch(&mut items, |ctx, chunk| {
            for (k, out) in chunk.iter_mut() {
                *out = self.search_one(*k, &mut ctx.counters);
                ctx.counters.ops += 1;
            }
        });
        (items.into_iter().map(|(_, r)| r).collect(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_keys(n: u32) -> Vec<u32> {
        (0..n)
            .map(|mut x| {
                x ^= x >> 16;
                x = x.wrapping_mul(0x7feb_352d);
                x ^= x >> 15;
                x.wrapping_mul(0x846c_a68b) & 0x7FFF_FFFF
            })
            .collect()
    }

    #[test]
    fn build_and_search_roundtrip() {
        let grid = Grid::new(4);
        let keys = mixed_keys(10_000);
        let pairs: Vec<(u32, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let t = StadiumHash::new(pairs.len(), 0.6, 11);
        t.bulk_build(&pairs, &grid).expect("build");
        assert_eq!(t.len(), pairs.len());
        let (res, _) = t.bulk_search(&keys, &grid);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(*r, Some(i as u32), "key {}", keys[i]);
        }
    }

    #[test]
    fn misses_terminate_at_unclaimed_tickets() {
        let grid = Grid::new(2);
        let keys = mixed_keys(4_000);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 1)).collect();
        let t = StadiumHash::new(pairs.len(), 0.5, 3);
        t.bulk_build(&pairs, &grid).unwrap();
        let absent: Vec<u32> = (0..4_000u32).map(|k| k | 0x4000_0000).collect();
        let (res, rep) = t.bulk_search(&absent, &grid);
        let present: std::collections::HashSet<u32> = keys.into_iter().collect();
        for (q, r) in absent.iter().zip(&res) {
            if !present.contains(q) {
                assert_eq!(*r, None);
            }
        }
        // At 50 % load a miss costs ~2 probes = ~2 board reads + ~1 table
        // read: the "at least two memory reads" signature.
        let per_miss = rep.counters.sector_reads as f64 / absent.len() as f64;
        assert!(per_miss >= 2.0, "reads/miss = {per_miss}");
    }

    #[test]
    fn insertion_cost_is_one_atomic_plus_one_write() {
        let grid = Grid::sequential();
        let keys = mixed_keys(2_000);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k)).collect();
        let t = StadiumHash::new(pairs.len(), 0.2, 5);
        let report = t.bulk_build(&pairs, &grid).unwrap();
        let atomics = report.counters.atomics as f64 / pairs.len() as f64;
        let writes = report.counters.sector_writes as f64 / pairs.len() as f64;
        assert!((1.0..1.3).contains(&atomics), "atomics/insert = {atomics}");
        assert!((writes - 1.0).abs() < 1e-9, "writes/insert = {writes}");
    }

    #[test]
    fn survives_high_load() {
        let grid = Grid::new(4);
        let keys = mixed_keys(20_000);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k)).collect();
        let t = StadiumHash::new(pairs.len(), 0.9, 1);
        t.bulk_build(&pairs, &grid).expect("stadium at 90%");
        assert_eq!(t.len(), pairs.len());
        let (res, _) = t.bulk_search(&keys, &grid);
        assert!(res.iter().all(|r| r.is_some()));
    }

    #[test]
    fn ticket_board_is_compact() {
        let t = StadiumHash::new(100_000, 0.6, 2);
        // One bit per slot: board ≈ table/64.
        assert!(t.ticket_board_bytes() * 32 <= t.device_bytes());
    }

    #[test]
    fn concurrent_build_no_lost_elements() {
        let grid = Grid::new(8);
        let _chaos = simt::ChaosGuard::new(0.05);
        let keys = mixed_keys(30_000);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 5)).collect();
        let t = StadiumHash::new(pairs.len(), 0.8, 77);
        t.bulk_build(&pairs, &grid).expect("build");
        assert_eq!(t.len(), pairs.len());
        let (res, _) = t.bulk_search(&keys, &grid);
        assert!(res.iter().all(|r| r.is_some()));
    }
}
