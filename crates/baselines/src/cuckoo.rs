//! CUDPP-style cuckoo hashing (Alcantara et al., paper ref. 1) — the static hash
//! table the paper compares against in §VI-A/B.
//!
//! The table is open addressing with `H` (default 4) hash functions and a
//! small stash. Bulk build is per-thread: each thread `atomicExch`es its
//! pair into the key's first position; if a pair was evicted the thread
//! re-inserts the evictee into *its* next position, up to `max_iter`
//! evictions, then falls back to the stash; if even the stash fails, the
//! whole build restarts with fresh hash functions (the failure mode the
//! paper cites: "as the load factor increases, it is increasingly likely
//! that a bulk build using cuckoo hashing fails").
//!
//! Searches probe the positions in order and may stop early at an empty
//! slot: since slots never empty during a build-only lifetime, an empty
//! first position proves absence. In the best case an insertion is one
//! atomic and a search one scattered read — which is why the paper calls
//! CUDPP's peak "hard to beat".

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use rand::{Rng, SeedableRng};
use simt::{pack_pair, unpack_pair, Grid, LaunchReport, PerfCounters};

/// An empty slot: both key and value lanes all-ones.
const EMPTY_SLOT: u64 = u64::MAX;

/// The key reserved as "empty" (callers must not insert it).
pub const CUCKOO_EMPTY_KEY: u32 = u32::MAX;

/// Configuration for [`CuckooHash`].
#[derive(Debug, Clone, Copy)]
pub struct CuckooConfig {
    /// Load factor: stored elements / table slots. CUDPP exposes exactly
    /// this knob; it equals the structure's memory utilization.
    pub load_factor: f64,
    /// Number of hash functions (CUDPP uses 4).
    pub num_hashes: usize,
    /// Stash slots for insertions whose eviction chains run too long
    /// (CUDPP's stash holds 101 entries).
    pub stash_size: usize,
    /// Whole-build restarts tolerated before giving up.
    pub max_restarts: u32,
    /// Hash-function seed.
    pub seed: u64,
}

impl Default for CuckooConfig {
    fn default() -> Self {
        Self {
            load_factor: 0.6,
            num_hashes: 4,
            stash_size: 101,
            max_restarts: 16,
            seed: 0xC0C0_CAFE,
        }
    }
}

/// Statistics from a successful bulk build.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuckooBuildStats {
    /// Whole-table restarts that were needed (0 in the common case).
    pub restarts: u32,
    /// Elements that ended up in the stash.
    pub stash_used: usize,
    /// Total eviction steps across all insertions (≥ n).
    pub total_moves: u64,
}

/// Errors from [`CuckooHash::bulk_build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CuckooError {
    /// Every restart exhausted its eviction budget — the load factor is too
    /// high for this hash family.
    BuildFailed {
        /// Restarts attempted before giving up.
        restarts: u32,
    },
}

impl std::fmt::Display for CuckooError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CuckooError::BuildFailed { restarts } => {
                write!(f, "cuckoo build failed after {restarts} restarts")
            }
        }
    }
}

impl std::error::Error for CuckooError {}

/// One linear-congruential hash into the table, `((a·k + b) mod p) mod size`.
#[derive(Debug, Clone, Copy)]
struct SlotHash {
    a: u64,
    b: u64,
}

const P: u64 = 4_294_967_291;

impl SlotHash {
    #[inline]
    fn slot(&self, key: u32, size: usize) -> usize {
        (((self.a * key as u64 + self.b) % P) % size as u64) as usize
    }
}

/// The static cuckoo hash table.
pub struct CuckooHash {
    slots: Vec<AtomicU64>,
    stash: Vec<AtomicU64>,
    hashes: Vec<SlotHash>,
    stash_count: AtomicUsize,
    max_iter: u32,
    config: CuckooConfig,
}

impl CuckooHash {
    /// An empty table sized for `n` elements at the configured load factor.
    pub fn new(n: usize, config: CuckooConfig) -> Self {
        assert!(n > 0);
        assert!(
            (0.0..1.0).contains(&config.load_factor) && config.load_factor > 0.0,
            "load factor must be in (0, 1)"
        );
        assert!(config.num_hashes >= 2);
        let size = ((n as f64 / config.load_factor).ceil() as usize).max(config.num_hashes);
        let mut table = Self {
            slots: Vec::new(),
            stash: Vec::new(),
            hashes: Vec::new(),
            stash_count: AtomicUsize::new(0),
            // Alcantara's bound: O(log n) eviction chain before bailing.
            max_iter: (7.0 * (n.max(2) as f64).ln()).ceil() as u32,
            config,
        };
        table.reset(size, config.seed);
        table
    }

    /// Re-randomizes hash functions and clears the table (a build restart).
    fn reset(&mut self, size: usize, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.hashes = (0..self.config.num_hashes)
            .map(|_| SlotHash {
                a: rng.gen_range(1..P),
                b: rng.gen_range(0..P),
            })
            .collect();
        self.slots = (0..size).map(|_| AtomicU64::new(EMPTY_SLOT)).collect();
        self.stash = (0..self.config.stash_size)
            .map(|_| AtomicU64::new(EMPTY_SLOT))
            .collect();
        self.stash_count.store(0, Ordering::Release);
    }

    /// Table slots (excluding the stash).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Device bytes of the table + stash (the model's working set).
    pub fn device_bytes(&self) -> u64 {
        ((self.slots.len() + self.stash.len()) * 8) as u64
    }

    /// Elements currently stored (host-side scan).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .chain(self.stash.iter())
            .filter(|s| s.load(Ordering::Acquire) != EMPTY_SLOT)
            .count()
    }

    /// True when the table holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Memory utilization = load factor achieved (stored / capacity).
    pub fn memory_utilization(&self) -> f64 {
        self.len() as f64 / (self.slots.len() + self.stash.len()) as f64
    }

    /// Inserts one pair, driving its eviction chain. Returns the number of
    /// moves on success, `Err(())` if the chain exceeded the budget and the
    /// stash was full.
    fn insert_one(&self, mut key: u32, mut value: u32, c: &mut PerfCounters) -> Result<u64, ()> {
        let size = self.slots.len();
        let mut pos = self.hashes[0].slot(key, size);
        let mut moves = 0u64;
        for _ in 0..self.max_iter {
            let incoming = pack_pair(key, value);
            c.atomic_exchanges += 1;
            let evicted = self.slots[pos].swap(incoming, Ordering::AcqRel);
            moves += 1;
            if evicted == EMPTY_SLOT {
                return Ok(moves);
            }
            let (ek, ev) = unpack_pair(evicted);
            if ek == key {
                // Uniqueness: the same key was already present; its old pair
                // has been replaced by ours. Done.
                return Ok(moves);
            }
            // Move the evictee to *its* next position: find which hash put
            // it here, use the following one (CUDPP's scheme).
            let mut next_h = 0;
            for (i, h) in self.hashes.iter().enumerate() {
                if h.slot(ek, size) == pos {
                    next_h = (i + 1) % self.hashes.len();
                    break;
                }
            }
            key = ek;
            value = ev;
            pos = self.hashes[next_h].slot(key, size);
        }
        // Chain too long: try the stash. CUDPP's stash is *hashed* — the key
        // has exactly one stash slot; if it is taken the whole build fails
        // and restarts with new hash functions.
        let slot = &self.stash[self.stash_slot(key)];
        c.atomics += 1;
        match slot.compare_exchange(
            EMPTY_SLOT,
            pack_pair(key, value),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                self.stash_count.fetch_add(1, Ordering::Relaxed);
                Ok(moves)
            }
            Err(occupant) if unpack_pair(occupant).0 == key => {
                // Same key already stashed: replace its value.
                c.atomics += 1;
                let _ = slot.compare_exchange(
                    occupant,
                    pack_pair(key, value),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                Ok(moves)
            }
            Err(_) => Err(()),
        }
    }

    /// The single stash position for `key` (CUDPP's stash hash function).
    #[inline]
    fn stash_slot(&self, key: u32) -> usize {
        (key.wrapping_mul(0x9E37_79B1) ^ key >> 16) as usize % self.stash.len()
    }

    /// Bulk build from scratch (per-thread insertion across the grid),
    /// restarting with fresh hash functions on failure. This is the only
    /// way to add elements — the structure is static, which is the entire
    /// point of the paper's comparison.
    pub fn bulk_build(
        &mut self,
        pairs: &[(u32, u32)],
        grid: &Grid,
    ) -> Result<(CuckooBuildStats, LaunchReport), CuckooError> {
        let mut restarts = 0;
        loop {
            let failed = AtomicUsize::new(0);
            let moves = AtomicU64::new(0);
            let table = &*self;
            let mut items: Vec<(u32, u32)> = pairs.to_vec();
            let report = grid.launch(&mut items, |ctx, chunk| {
                let mut chunk_moves = 0u64;
                for &mut (k, v) in chunk {
                    debug_assert_ne!(k, CUCKOO_EMPTY_KEY);
                    match table.insert_one(k, v, &mut ctx.counters) {
                        Ok(m) => chunk_moves += m,
                        Err(()) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    ctx.counters.ops += 1;
                }
                moves.fetch_add(chunk_moves, Ordering::Relaxed);
            });
            if failed.load(Ordering::Acquire) == 0 {
                return Ok((
                    CuckooBuildStats {
                        restarts,
                        stash_used: self.stash_count.load(Ordering::Acquire),
                        total_moves: moves.load(Ordering::Acquire),
                    },
                    report,
                ));
            }
            restarts += 1;
            if restarts >= self.config.max_restarts {
                return Err(CuckooError::BuildFailed { restarts });
            }
            let size = self.slots.len();
            self.reset(size, self.config.seed.wrapping_add(restarts as u64 * 0x9e37));
        }
    }

    /// Searches one key: probes the positions in order, stopping early at an
    /// empty slot (valid because slots never empty in a build-only table),
    /// then scans the stash if it is non-empty.
    pub fn search_one(&self, key: u32, c: &mut PerfCounters) -> Option<u32> {
        let size = self.slots.len();
        for h in &self.hashes {
            c.sector_reads += 1;
            let slot = self.slots[h.slot(key, size)].load(Ordering::Acquire);
            if slot == EMPTY_SLOT {
                break;
            }
            let (k, v) = unpack_pair(slot);
            if k == key {
                return Some(v);
            }
        }
        if self.stash_count.load(Ordering::Acquire) > 0 {
            // Hashed stash: one extra probe, not a scan.
            c.sector_reads += 1;
            let slot = self.stash[self.stash_slot(key)].load(Ordering::Acquire);
            if slot != EMPTY_SLOT {
                let (k, v) = unpack_pair(slot);
                if k == key {
                    return Some(v);
                }
            }
        }
        None
    }

    /// Bulk search, one query per thread.
    pub fn bulk_search(&self, keys: &[u32], grid: &Grid) -> (Vec<Option<u32>>, LaunchReport) {
        let mut items: Vec<(u32, Option<u32>)> = keys.iter().map(|&k| (k, None)).collect();
        let report = grid.launch(&mut items, |ctx, chunk| {
            for (k, out) in chunk.iter_mut() {
                *out = self.search_one(*k, &mut ctx.counters);
                ctx.counters.ops += 1;
            }
        });
        (items.into_iter().map(|(_, r)| r).collect(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        Grid::new(8)
    }

    fn build(n: u32, lf: f64) -> (CuckooHash, CuckooBuildStats) {
        let pairs: Vec<(u32, u32)> = (0..n).map(|k| (k * 2 + 1, k)).collect();
        let mut t = CuckooHash::new(
            n as usize,
            CuckooConfig {
                load_factor: lf,
                ..CuckooConfig::default()
            },
        );
        let (stats, _) = t.bulk_build(&pairs, &grid()).expect("build");
        (t, stats)
    }

    #[test]
    fn build_and_search_all_hit() {
        let (t, _) = build(10_000, 0.6);
        assert_eq!(t.len(), 10_000);
        let keys: Vec<u32> = (0..10_000).map(|k| k * 2 + 1).collect();
        let (res, _) = t.bulk_search(&keys, &grid());
        for (i, r) in res.iter().enumerate() {
            assert_eq!(*r, Some(i as u32));
        }
    }

    #[test]
    fn search_none_hit_misses() {
        let (t, _) = build(5_000, 0.5);
        let misses: Vec<u32> = (0..5_000).map(|k| k * 2).collect(); // evens absent
        let (res, _) = t.bulk_search(&misses, &grid());
        assert!(res.iter().all(|r| r.is_none()));
    }

    #[test]
    fn capacity_respects_load_factor() {
        let t = CuckooHash::new(1000, CuckooConfig {
            load_factor: 0.5,
            ..CuckooConfig::default()
        });
        assert_eq!(t.capacity(), 2000);
        assert!((0.49..0.51).contains(&(1000.0 / t.capacity() as f64)));
    }

    #[test]
    fn high_load_factor_builds_with_evictions() {
        let (t, stats) = build(20_000, 0.85);
        assert_eq!(t.len(), 20_000);
        assert!(
            stats.total_moves > 20_000,
            "at 85 % load evictions must occur: {} moves",
            stats.total_moves
        );
    }

    #[test]
    fn impossible_load_factor_fails_cleanly() {
        // More elements than slots can ever hold at lf ~0.999 with 2 hashes:
        // the build must fail with an error, not hang.
        let pairs: Vec<(u32, u32)> = (0..30_000).map(|k| (k, k)).collect();
        let mut t = CuckooHash::new(
            30_000,
            CuckooConfig {
                load_factor: 0.999,
                num_hashes: 2,
                stash_size: 2,
                max_restarts: 2,
                ..CuckooConfig::default()
            },
        );
        match t.bulk_build(&pairs, &grid()) {
            Err(CuckooError::BuildFailed { restarts }) => assert_eq!(restarts, 2),
            Ok(_) => {
                // 2-function cuckoo at 99.9 % occasionally squeaks through
                // only for tiny inputs; at 30 k it should not.
                panic!("expected build failure at 99.9 % load with 2 hashes")
            }
        }
    }

    #[test]
    fn duplicate_key_keeps_single_instance() {
        let pairs = vec![(7u32, 1u32), (7, 2), (7, 3), (8, 4)];
        let mut t = CuckooHash::new(16, CuckooConfig::default());
        t.bulk_build(&pairs, &Grid::sequential()).unwrap();
        assert_eq!(t.len(), 2, "duplicates replaced, not accumulated");
        let mut c = PerfCounters::default();
        assert!(t.search_one(7, &mut c).is_some());
        assert_eq!(t.search_one(8, &mut c), Some(4));
    }

    #[test]
    fn search_cost_counts_scattered_sectors() {
        let (t, _) = build(4_096, 0.4);
        let keys: Vec<u32> = (0..4_096).map(|k| k * 2 + 1).collect();
        let (_, report) = t.bulk_search(&keys, &grid());
        // Probes are scattered reads; no coalesced slab traffic.
        assert!(report.counters.sector_reads >= 4_096);
        assert_eq!(report.counters.slab_reads, 0);
        // At 40 % load most hits take 1–2 probes.
        let per_op = report.counters.sector_reads as f64 / 4_096.0;
        assert!((1.0..2.5).contains(&per_op), "probes/search = {per_op}");
    }

    #[test]
    fn rebuild_replaces_contents() {
        let mut t = CuckooHash::new(100, CuckooConfig::default());
        let g = grid();
        t.bulk_build(&(0..100).map(|k| (k, k)).collect::<Vec<_>>(), &g)
            .unwrap();
        // CUDPP-style incremental update = rebuild from scratch with the
        // union of old and new pairs.
        let mut t2 = CuckooHash::new(150, CuckooConfig::default());
        let all: Vec<(u32, u32)> = (0..150).map(|k| (k, k)).collect();
        t2.bulk_build(&all, &g).unwrap();
        assert_eq!(t2.len(), 150);
        let mut c = PerfCounters::default();
        assert_eq!(t2.search_one(149, &mut c), Some(149));
    }
}

#[cfg(test)]
mod stash_tests {
    use super::*;

    #[test]
    fn stash_catches_long_chains_and_stays_searchable() {
        // A brutal configuration: 2 hash functions at high load forces some
        // eviction chains past max_iter and into the stash.
        // Well-mixed keys: affine hashes are collision-free on sequential
        // domains, which would make even 2-hash/90% builds trivially easy.
        let n = 20_000u32;
        let mix = |mut x: u32| -> u32 {
            x ^= x >> 16;
            x = x.wrapping_mul(0x7feb_352d);
            x ^= x >> 15;
            x = x.wrapping_mul(0x846c_a68b);
            x ^ (x >> 16)
        };
        let pairs: Vec<(u32, u32)> = (0..n).map(|k| (mix(k) & 0x7FFF_FFFF, k)).collect();
        let mut t = CuckooHash::new(
            n as usize,
            CuckooConfig {
                load_factor: 0.93,
                num_hashes: 4,
                stash_size: 101,
                max_restarts: 64,
                ..CuckooConfig::default()
            },
        );
        let (stats, _) = t.bulk_build(&pairs, &Grid::new(4)).expect("build");
        assert!(
            stats.stash_used > 0,
            "4-hash cuckoo at 93% load with mixed keys must need the stash"
        );
        // Every element, stashed or not, is findable.
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        let (res, _) = t.bulk_search(&keys, &Grid::new(4));
        assert!(res.iter().all(|r| r.is_some()));
        assert_eq!(t.len(), n as usize);
    }

    #[test]
    fn stash_lookup_is_one_probe() {
        let mut t = CuckooHash::new(64, CuckooConfig::default());
        t.bulk_build(&[(1, 10), (2, 20)], &Grid::sequential()).unwrap();
        // Force something into the stash manually by occupying the count.
        // (Normal builds at low load leave the stash empty: misses must not
        // pay a stash probe at all.)
        let mut c = PerfCounters::default();
        t.search_one(999, &mut c);
        let probes_without_stash = c.sector_reads;
        assert!(probes_without_stash <= t.config.num_hashes as u64);
    }
}
