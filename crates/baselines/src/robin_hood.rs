//! Robin Hood hashing on the GPU (García et al., "Coherent Parallel
//! Hashing" — paper ref. 5), one of the §II related-work baselines.
//!
//! Open addressing with linear probing where placement is *age-ordered*: an
//! inserting element displaces any occupant that sits closer to its home
//! slot ("richer") than the inserter currently is, then continues inserting
//! the evictee. The age of an occupant is derivable — `(slot - h(key)) mod
//! size` — so no extra metadata is stored and displacement is a single
//! 64-bit `atomicExch`, the same currency as cuckoo eviction.
//!
//! The paper's verdict (§II): Robin Hood "focuses on higher load factors
//! and uses more spatial locality … at the expense of performance
//! degradation compared to cuckoo hashing" — our transaction counts
//! reproduce exactly that trade (build never fails even at 0.95 load, but
//! probes/search exceed cuckoo's).

use std::sync::atomic::{AtomicU64, Ordering};

use simt::{pack_pair, unpack_pair, Grid, LaunchReport, PerfCounters};

const EMPTY_SLOT: u64 = u64::MAX;

/// The Robin Hood hash table.
pub struct RobinHoodHash {
    slots: Vec<AtomicU64>,
    a: u64,
    b: u64,
    /// Probes tolerated before declaring the table pathologically full.
    max_probes: u32,
}

const P: u64 = 4_294_967_291;

impl RobinHoodHash {
    /// A table sized for `n` elements at `load_factor`.
    pub fn new(n: usize, load_factor: f64, seed: u64) -> Self {
        assert!(n > 0 && load_factor > 0.0 && load_factor < 1.0);
        let size = ((n as f64 / load_factor).ceil() as usize).max(8);
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        Self {
            slots: (0..size).map(|_| AtomicU64::new(EMPTY_SLOT)).collect(),
            a: 1 + next() % (P - 1),
            b: next() % P,
            max_probes: (size as u32).max(64),
        }
    }

    /// Table slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Device bytes (the model's working set).
    pub fn device_bytes(&self) -> u64 {
        (self.slots.len() * 8) as u64
    }

    /// Stored elements (host-side scan).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Acquire) != EMPTY_SLOT)
            .count()
    }

    /// True when no element is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn home(&self, key: u32) -> usize {
        (((self.a * key as u64 + self.b) % P) % self.slots.len() as u64) as usize
    }

    /// Age of `key` when sitting in `slot`: its displacement from home.
    #[inline]
    fn age(&self, key: u32, slot: usize) -> u32 {
        let size = self.slots.len();
        ((slot + size - self.home(key)) % size) as u32
    }

    /// Per-thread insertion with Robin Hood displacement.
    fn insert_one(&self, mut key: u32, mut value: u32, c: &mut PerfCounters) -> Result<(), ()> {
        let size = self.slots.len();
        let mut pos = self.home(key);
        let mut my_age = 0u32;
        for _ in 0..self.max_probes {
            c.sector_reads += 1;
            let occupant = self.slots[pos].load(Ordering::Acquire);
            if occupant == EMPTY_SLOT {
                c.atomics += 1;
                match self.slots[pos].compare_exchange(
                    EMPTY_SLOT,
                    pack_pair(key, value),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Ok(()),
                    Err(_) => {
                        c.cas_failures += 1;
                        continue; // slot was taken under us: re-evaluate it
                    }
                }
            }
            let (ok, _ov) = unpack_pair(occupant);
            if ok == key {
                // Replace in place (uniqueness).
                c.atomic_exchanges += 1;
                self.slots[pos].swap(pack_pair(key, value), Ordering::AcqRel);
                return Ok(());
            }
            let occ_age = self.age(ok, pos);
            if occ_age < my_age {
                // The occupant is richer: take its slot, reinsert it.
                c.atomic_exchanges += 1;
                let displaced = self.slots[pos].swap(pack_pair(key, value), Ordering::AcqRel);
                if displaced == occupant {
                    let (dk, dv) = unpack_pair(displaced);
                    key = dk;
                    value = dv;
                    my_age = occ_age;
                } else if displaced == EMPTY_SLOT {
                    // We grabbed an empty slot after all: done.
                    return Ok(());
                } else {
                    // Raced with another displacement: continue inserting
                    // whatever we pulled out (never lose an element).
                    let (dk, dv) = unpack_pair(displaced);
                    key = dk;
                    value = dv;
                    my_age = self.age(dk, pos);
                }
            }
            pos = (pos + 1) % size;
            my_age += 1;
        }
        Err(())
    }

    /// Bulk build, one element per thread. Robin Hood never needs the
    /// cuckoo-style restart: linear probing always terminates below
    /// capacity.
    pub fn bulk_build(
        &self,
        pairs: &[(u32, u32)],
        grid: &Grid,
    ) -> Result<LaunchReport, &'static str> {
        assert!(pairs.len() <= self.slots.len(), "over capacity");
        let failed = std::sync::atomic::AtomicUsize::new(0);
        let mut items = pairs.to_vec();
        let report = grid.launch(&mut items, |ctx, chunk| {
            for &mut (k, v) in chunk {
                if self.insert_one(k, v, &mut ctx.counters).is_err() {
                    failed.fetch_add(1, Ordering::Relaxed);
                }
                ctx.counters.ops += 1;
            }
        });
        if failed.load(Ordering::Acquire) == 0 {
            Ok(report)
        } else {
            Err("robin hood probe budget exhausted")
        }
    }

    /// Searches one key: probe from home until found or an empty slot.
    ///
    /// García et al.'s phase-ordered build maintains the strict Robin Hood
    /// order, enabling an age-based early exit on misses. Our build races
    /// displacements concurrently, which can leave bounded local disorder,
    /// so searches conservatively probe to the first empty slot — still the
    /// linear-probing cost profile the paper contrasts against cuckoo's.
    pub fn search_one(&self, key: u32, c: &mut PerfCounters) -> Option<u32> {
        let size = self.slots.len();
        let mut pos = self.home(key);
        for _ in 0..self.max_probes {
            c.sector_reads += 1;
            let slot = self.slots[pos].load(Ordering::Acquire);
            if slot == EMPTY_SLOT {
                return None;
            }
            let (k, v) = unpack_pair(slot);
            if k == key {
                return Some(v);
            }
            pos = (pos + 1) % size;
        }
        None
    }

    /// Bulk search, one query per thread.
    pub fn bulk_search(&self, keys: &[u32], grid: &Grid) -> (Vec<Option<u32>>, LaunchReport) {
        let mut items: Vec<(u32, Option<u32>)> = keys.iter().map(|&k| (k, None)).collect();
        let report = grid.launch(&mut items, |ctx, chunk| {
            for (k, out) in chunk.iter_mut() {
                *out = self.search_one(*k, &mut ctx.counters);
                ctx.counters.ops += 1;
            }
        });
        (items.into_iter().map(|(_, r)| r).collect(), report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_keys(n: u32) -> Vec<u32> {
        (0..n)
            .map(|mut x| {
                x ^= x >> 16;
                x = x.wrapping_mul(0x7feb_352d);
                x ^= x >> 15;
                x.wrapping_mul(0x846c_a68b) & 0x7FFF_FFFF
            })
            .collect()
    }

    #[test]
    fn build_and_search_roundtrip() {
        let grid = Grid::new(4);
        let keys = mixed_keys(10_000);
        let pairs: Vec<(u32, u32)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let t = RobinHoodHash::new(pairs.len(), 0.6, 42);
        t.bulk_build(&pairs, &grid).expect("build");
        assert_eq!(t.len(), pairs.len());
        let (res, _) = t.bulk_search(&keys, &grid);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(*r, Some(i as u32), "key {}", keys[i]);
        }
    }

    #[test]
    fn misses_are_misses() {
        let grid = Grid::new(2);
        let keys = mixed_keys(5_000);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, 1)).collect();
        let t = RobinHoodHash::new(pairs.len(), 0.5, 7);
        t.bulk_build(&pairs, &grid).unwrap();
        let absent: Vec<u32> = (0..5_000u32).map(|k| k.wrapping_mul(7) | 0x4000_0000).collect();
        let present: std::collections::HashSet<u32> = keys.into_iter().collect();
        let (res, _) = t.bulk_search(&absent, &grid);
        for (q, r) in absent.iter().zip(&res) {
            if !present.contains(q) {
                assert_eq!(*r, None, "false positive for {q}");
            }
        }
    }

    #[test]
    fn survives_very_high_load_factor() {
        // The paper's point about Robin Hood: it keeps working at load
        // factors where cuckoo builds start failing.
        let grid = Grid::new(4);
        let keys = mixed_keys(20_000);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k)).collect();
        let t = RobinHoodHash::new(pairs.len(), 0.95, 3);
        t.bulk_build(&pairs, &grid).expect("robin hood at 95%");
        assert_eq!(t.len(), pairs.len());
        let (res, rep) = t.bulk_search(&keys, &grid);
        assert!(res.iter().all(|r| r.is_some()));
        // ... at the price of long probe sequences.
        let probes = rep.counters.sector_reads as f64 / keys.len() as f64;
        assert!(probes > 2.0, "at 95% load probes/search = {probes}");
    }

    #[test]
    fn duplicate_keys_keep_one_instance() {
        let grid = Grid::sequential();
        let pairs = vec![(5u32, 1u32), (5, 2), (6, 3)];
        let t = RobinHoodHash::new(8, 0.5, 1);
        t.bulk_build(&pairs, &grid).unwrap();
        assert_eq!(t.len(), 2);
        let mut c = PerfCounters::default();
        assert!(t.search_one(5, &mut c).is_some());
    }

    #[test]
    fn concurrent_build_loses_nothing() {
        let grid = Grid::new(8);
        let keys = mixed_keys(30_000);
        let pairs: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k ^ 7)).collect();
        let t = RobinHoodHash::new(pairs.len(), 0.85, 9);
        let _chaos = simt::ChaosGuard::new(0.05);
        t.bulk_build(&pairs, &grid).expect("build");
        assert_eq!(t.len(), pairs.len(), "displacement races lost elements");
        let (res, _) = t.bulk_search(&keys, &grid);
        assert!(res.iter().all(|r| r.is_some()));
    }
}
