//! Misra & Chaudhuri's lock-free hash table (paper ref. 4) — the dynamic comparator of
//! §VI-C.
//!
//! A key-only (unordered set) hash table with chaining over *classic*
//! linked-list nodes: 32-bit key + 32-bit next index, per-thread operations,
//! Harris-style logical deletion (a mark bit in the next reference) with
//! helping. As in the original, it is "not fully dynamic": all nodes are
//! pre-allocated in one array sized at construction ("which must be known at
//! compile time"), node slots are never reclaimed, and the theoretical
//! memory utilization therefore tops out at 50 % (8 bytes per 4-byte key).
//!
//! Every traversal step is one scattered sector read executed by a single
//! thread while its warp diverges — the access pattern whose cost the slab
//! list exists to avoid.

use std::sync::atomic::{AtomicU32, Ordering};

use simt::{Grid, LaunchReport, PerfCounters};

/// Null reference (no mark bit set).
const NIL: u32 = 0x7FFF_FFFF;
/// Mark bit: the node *after* this reference is logically deleted.
const MARK: u32 = 0x8000_0000;

#[inline]
fn idx(r: u32) -> u32 {
    r & !MARK
}

#[inline]
fn is_marked(r: u32) -> bool {
    r & MARK != 0
}

/// The pre-allocated node pool + bucket heads.
pub struct MisraHash {
    heads: Vec<AtomicU32>,
    keys: Vec<AtomicU32>,
    nexts: Vec<AtomicU32>,
    next_free: AtomicU32,
}

/// Result of one Misra-table operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisraResult {
    /// Insert succeeded (key was absent).
    Inserted,
    /// Insert found the key already present.
    AlreadyPresent,
    /// Delete / search found the key.
    Found,
    /// Delete / search did not find the key.
    NotFound,
}

/// A per-thread operation for [`MisraHash::execute_batch`].
#[derive(Debug, Clone, Copy)]
pub enum MisraOp {
    /// Add a key to the set.
    Insert(u32),
    /// Remove a key from the set.
    Delete(u32),
    /// Membership query.
    Search(u32),
}

impl MisraHash {
    /// A table with `num_buckets` chains and room for `capacity` insertions
    /// (the paper's static pre-allocation; inserting more panics, which is
    /// precisely the limitation the slab hash removes).
    pub fn new(num_buckets: u32, capacity: u32) -> Self {
        assert!(num_buckets >= 1);
        assert!(capacity < NIL);
        Self {
            heads: (0..num_buckets).map(|_| AtomicU32::new(NIL)).collect(),
            keys: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            nexts: (0..capacity).map(|_| AtomicU32::new(NIL)).collect(),
            next_free: AtomicU32::new(0),
        }
    }

    /// Bucket count.
    pub fn num_buckets(&self) -> u32 {
        self.heads.len() as u32
    }

    /// Device bytes (heads + the full pre-allocated node array — the paper
    /// pre-commits everything up front).
    pub fn device_bytes(&self) -> u64 {
        (self.heads.len() * 4 + self.keys.len() * 8) as u64
    }

    /// Nodes consumed so far (deleted nodes are never reclaimed).
    pub fn nodes_used(&self) -> u32 {
        self.next_free.load(Ordering::Acquire).min(self.keys.len() as u32)
    }

    #[inline]
    fn bucket(&self, key: u32) -> usize {
        // Full-avalanche mixer before the modulus: a bare multiplicative
        // hash keyed by a constant sharing factors with the bucket count
        // would strand buckets (e.g. 0x9E3779B9 is divisible by 3).
        let mut x = key;
        x ^= x >> 16;
        x = x.wrapping_mul(0x7feb_352d);
        x ^= x >> 15;
        x = x.wrapping_mul(0x846c_a68b);
        x ^= x >> 16;
        (x as u64 % self.heads.len() as u64) as usize
    }

    #[inline]
    fn next_ref(&self, node: u32) -> &AtomicU32 {
        &self.nexts[node as usize]
    }

    /// The reference cell preceding position `prev`: the bucket head when
    /// `prev == NIL`.
    #[inline]
    fn prev_cell(&self, bucket: usize, prev: u32) -> &AtomicU32 {
        if prev == NIL {
            &self.heads[bucket]
        } else {
            self.next_ref(prev)
        }
    }

    /// Harris-style find: returns `(prev, curr)` such that `curr` is the
    /// first unmarked node with `key(curr) >= key` (or NIL), unlinking
    /// marked nodes along the way (helping). Each step is a divergent
    /// scattered read.
    fn find(&self, bucket: usize, key: u32, c: &mut PerfCounters) -> (u32, u32) {
        'retry: loop {
            let mut prev = NIL;
            c.sector_reads += 1;
            c.divergent_steps += 1;
            let mut curr = idx(self.heads[bucket].load(Ordering::Acquire));
            loop {
                if curr == NIL {
                    return (prev, NIL);
                }
                // One node = 8 contiguous bytes (key + next): one sector.
                c.sector_reads += 1;
                c.divergent_steps += 1;
                let succ = self.next_ref(curr).load(Ordering::Acquire);
                if is_marked(succ) {
                    // Help unlink the logically deleted node.
                    c.atomics += 1;
                    if self
                        .prev_cell(bucket, prev)
                        .compare_exchange(curr, idx(succ), Ordering::AcqRel, Ordering::Acquire)
                        .is_err()
                    {
                        c.cas_failures += 1;
                        continue 'retry;
                    }
                    curr = idx(succ);
                    continue;
                }
                let k = self.keys[curr as usize].load(Ordering::Acquire);
                if k >= key {
                    return (prev, curr);
                }
                prev = curr;
                curr = idx(succ);
            }
        }
    }

    /// Inserts `key`; lock-free, per-thread.
    ///
    /// # Panics
    /// Panics when the pre-allocated node array is exhausted — the
    /// structural limitation the paper calls out.
    pub fn insert(&self, key: u32, c: &mut PerfCounters) -> MisraResult {
        // Reserve a node lazily: only claim once we know the key is absent.
        let mut node = NIL;
        loop {
            let bucket = self.bucket(key);
            let (prev, curr) = self.find(bucket, key, c);
            if curr != NIL && self.keys[curr as usize].load(Ordering::Acquire) == key {
                return MisraResult::AlreadyPresent;
            }
            if node == NIL {
                node = self.next_free.fetch_add(1, Ordering::AcqRel);
                assert!(
                    (node as usize) < self.keys.len(),
                    "Misra table node pool exhausted ({} nodes) — capacity is fixed at \
                     construction, by design",
                    self.keys.len()
                );
                self.keys[node as usize].store(key, Ordering::Release);
            }
            self.next_ref(node).store(curr, Ordering::Release);
            c.atomics += 1;
            c.divergent_steps += 1;
            if self
                .prev_cell(bucket, prev)
                .compare_exchange(curr, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return MisraResult::Inserted;
            }
            c.cas_failures += 1;
        }
    }

    /// Deletes `key` (logical mark + best-effort unlink); lock-free.
    pub fn delete(&self, key: u32, c: &mut PerfCounters) -> MisraResult {
        loop {
            let bucket = self.bucket(key);
            let (prev, curr) = self.find(bucket, key, c);
            if curr == NIL || self.keys[curr as usize].load(Ordering::Acquire) != key {
                return MisraResult::NotFound;
            }
            c.sector_reads += 1;
            let succ = self.next_ref(curr).load(Ordering::Acquire);
            if is_marked(succ) {
                // Someone else is deleting this node; retry to settle.
                continue;
            }
            c.atomics += 1;
            c.divergent_steps += 1;
            if self
                .next_ref(curr)
                .compare_exchange(succ, succ | MARK, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                c.cas_failures += 1;
                continue;
            }
            // Best-effort physical unlink; failures are cleaned by helpers.
            c.atomics += 1;
            let _ = self.prev_cell(bucket, prev).compare_exchange(
                curr,
                idx(succ),
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            return MisraResult::Found;
        }
    }

    /// Membership search; wait-free over a quiescent list.
    pub fn search(&self, key: u32, c: &mut PerfCounters) -> MisraResult {
        let bucket = self.bucket(key);
        c.sector_reads += 1;
        c.divergent_steps += 1;
        let mut curr = idx(self.heads[bucket].load(Ordering::Acquire));
        while curr != NIL {
            c.sector_reads += 1; // key + next share the node's sector
            c.divergent_steps += 1;
            let k = self.keys[curr as usize].load(Ordering::Acquire);
            let succ = self.next_ref(curr).load(Ordering::Acquire);
            if k == key {
                return if is_marked(succ) {
                    MisraResult::NotFound
                } else {
                    MisraResult::Found
                };
            }
            if k > key {
                return MisraResult::NotFound;
            }
            curr = idx(succ);
        }
        MisraResult::NotFound
    }

    /// Executes a mixed batch, one operation per simulated thread.
    pub fn execute_batch(
        &self,
        ops: &[MisraOp],
        grid: &Grid,
    ) -> (Vec<MisraResult>, LaunchReport) {
        let mut items: Vec<(MisraOp, MisraResult)> = ops
            .iter()
            .map(|&op| (op, MisraResult::NotFound))
            .collect();
        let report = grid.launch(&mut items, |ctx, chunk| {
            for (op, out) in chunk.iter_mut() {
                *out = match *op {
                    MisraOp::Insert(k) => self.insert(k, &mut ctx.counters),
                    MisraOp::Delete(k) => self.delete(k, &mut ctx.counters),
                    MisraOp::Search(k) => self.search(k, &mut ctx.counters),
                };
                ctx.counters.ops += 1;
            }
        });
        (items.into_iter().map(|(_, r)| r).collect(), report)
    }

    /// Live keys (host-side scan; skips marked nodes).
    pub fn len(&self) -> usize {
        let mut n = 0;
        for head in &self.heads {
            let mut curr = idx(head.load(Ordering::Acquire));
            while curr != NIL {
                let succ = self.nexts[curr as usize].load(Ordering::Acquire);
                if !is_marked(succ) {
                    n += 1;
                }
                curr = idx(succ);
            }
        }
        n
    }

    /// True when no live key is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> PerfCounters {
        PerfCounters::default()
    }

    #[test]
    fn insert_search_delete_roundtrip() {
        let t = MisraHash::new(16, 1000);
        let mut pc = c();
        assert_eq!(t.insert(5, &mut pc), MisraResult::Inserted);
        assert_eq!(t.insert(5, &mut pc), MisraResult::AlreadyPresent);
        assert_eq!(t.search(5, &mut pc), MisraResult::Found);
        assert_eq!(t.search(6, &mut pc), MisraResult::NotFound);
        assert_eq!(t.delete(5, &mut pc), MisraResult::Found);
        assert_eq!(t.delete(5, &mut pc), MisraResult::NotFound);
        assert_eq!(t.search(5, &mut pc), MisraResult::NotFound);
        assert!(t.is_empty());
    }

    #[test]
    fn sorted_chain_invariant() {
        let t = MisraHash::new(1, 100);
        let mut pc = c();
        for k in [5u32, 1, 9, 3, 7] {
            t.insert(k, &mut pc);
        }
        assert_eq!(t.len(), 5);
        for k in [1u32, 3, 5, 7, 9] {
            assert_eq!(t.search(k, &mut pc), MisraResult::Found);
        }
        assert_eq!(t.search(4, &mut pc), MisraResult::NotFound);
    }

    #[test]
    fn deleted_nodes_are_not_reclaimed() {
        let t = MisraHash::new(4, 100);
        let mut pc = c();
        for k in 0..50 {
            t.insert(k, &mut pc);
        }
        for k in 0..50 {
            t.delete(k, &mut pc);
        }
        assert!(t.is_empty());
        // Node pool consumption is monotone — the paper's static limitation.
        assert_eq!(t.nodes_used(), 50);
        for k in 50..100 {
            t.insert(k, &mut pc);
        }
        assert_eq!(t.nodes_used(), 100);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn capacity_exhaustion_panics() {
        let t = MisraHash::new(2, 10);
        let mut pc = c();
        for k in 0..11 {
            t.insert(k, &mut pc);
        }
    }

    #[test]
    fn concurrent_batch_consistency() {
        let t = MisraHash::new(64, 40_000);
        let grid = Grid::new(8);
        let inserts: Vec<MisraOp> = (0..20_000).map(MisraOp::Insert).collect();
        let (results, _) = t.execute_batch(&inserts, &grid);
        assert!(results.iter().all(|r| *r == MisraResult::Inserted));
        assert_eq!(t.len(), 20_000);

        // Mixed phase: delete the evens, search everything.
        let mut ops = Vec::new();
        for k in (0..20_000).step_by(2) {
            ops.push(MisraOp::Delete(k));
        }
        let (results, _) = t.execute_batch(&ops, &grid);
        assert!(results.iter().all(|r| *r == MisraResult::Found));
        assert_eq!(t.len(), 10_000);

        let searches: Vec<MisraOp> = (0..20_000).map(MisraOp::Search).collect();
        let (results, _) = t.execute_batch(&searches, &grid);
        for (k, r) in results.iter().enumerate() {
            let expect = if k % 2 == 0 {
                MisraResult::NotFound
            } else {
                MisraResult::Found
            };
            assert_eq!(*r, expect, "key {k}");
        }
    }

    #[test]
    fn concurrent_same_key_insert_once() {
        let t = MisraHash::new(1, 1000);
        let grid = Grid::new(8);
        let ops: Vec<MisraOp> = (0..256).map(|_| MisraOp::Insert(42)).collect();
        let (results, _) = t.execute_batch(&ops, &grid);
        let inserted = results
            .iter()
            .filter(|r| **r == MisraResult::Inserted)
            .count();
        assert_eq!(inserted, 1, "exactly one thread may win the insert");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn traversal_is_billed_divergent_and_scattered() {
        let t = MisraHash::new(1, 200);
        let mut pc = c();
        for k in 0..100 {
            t.insert(k, &mut pc);
        }
        let mut pc = c();
        t.search(99, &mut pc);
        assert!(pc.sector_reads >= 100, "long chain: {} reads", pc.sector_reads);
        assert!(pc.divergent_steps >= 100);
        assert_eq!(pc.slab_reads, 0);
    }
}
