//! # gpu-baselines — the comparator data structures from the paper's §VI
//!
//! * [`cuckoo`] — CUDPP's cuckoo hashing (Alcantara et al., paper ref. 1): the static
//!   open-addressing table used in the bulk benchmarks (Figs. 4–6). Bulk
//!   build with eviction chains + stash + restart; bulk search; incremental
//!   updates only by rebuilding from scratch.
//! * [`misra`] — Misra & Chaudhuri's lock-free chaining hash table over
//!   classic linked-list nodes: the dynamic comparator of the concurrent
//!   benchmark (Fig. 7b). Key-only, pre-allocated node pool, per-thread
//!   Harris-style list operations.
//! * [`robin_hood`] — García et al.'s Robin Hood hashing and
//! * [`stadium`] — Khorasani et al.'s stadium hashing: the two further
//!   related-work schemes §II discusses (and dismisses against CUDPP's
//!   peak); implemented so the `related` experiment can check that verdict
//!   quantitatively.
//!
//! Both bill their memory traffic through the same [`simt`] transaction
//! accounting as the slab hash, so the roofline model compares like with
//! like.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cuckoo;
pub mod misra;
pub mod robin_hood;
pub mod stadium;

pub use cuckoo::{CuckooBuildStats, CuckooConfig, CuckooError, CuckooHash};
pub use misra::{MisraHash, MisraOp, MisraResult};
pub use robin_hood::RobinHoodHash;
pub use stadium::StadiumHash;
