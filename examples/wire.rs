//! Quickstart for the wire transport: the slab hash served over TCP.
//!
//! Binds a framed [`WireServer`] over a broker, drives it with the
//! reconnecting [`WireClient`], then crashes the server mid-service to
//! show the failure contract: every failed call is a *typed*
//! [`TransportError`] (never a hang), and once a server is back on the
//! address, the same client redials by itself and the data is still there.
//!
//! Run with: `cargo run --release --example wire`

use std::sync::Arc;
use std::time::Duration;

use slab_hash::{KeyValue, SlabHash, SlabHashConfig};
use slab_ingress::{
    Broker, BrokerConfig, WireClient, WireClientConfig, WireServer, WireServerConfig,
};

fn spawn_service(table: &Arc<SlabHash<KeyValue>>, addr: &str) -> (Broker, WireServer) {
    let broker = Broker::spawn(Arc::clone(table), BrokerConfig::default());
    // After a crash the address can linger busy for a moment; retry briefly,
    // exactly as a supervised restart would.
    let mut attempt = 0u32;
    let server = loop {
        match WireServer::bind(addr, &broker, WireServerConfig::default()) {
            Ok(server) => break server,
            Err(e) if attempt < 100 => {
                attempt += 1;
                std::thread::sleep(Duration::from_millis(50));
                if attempt == 100 {
                    panic!("bind wire server on {addr}: {e}");
                }
            }
            Err(e) => panic!("bind wire server on {addr}: {e}"),
        }
    };
    (broker, server)
}

fn main() {
    // --- Serve ------------------------------------------------------------
    let table = Arc::new(SlabHash::<KeyValue>::new(SlabHashConfig::with_buckets(1024)));
    let (broker, server) = spawn_service(&table, "127.0.0.1:0");
    let addr = server.local_addr();
    println!("wire server listening on {addr}");

    // --- A client over real TCP -------------------------------------------
    // No connection yet: the first call dials, and every later call redials
    // as needed. That is the whole availability story from the caller's
    // side — there is no "reconnect()" to remember.
    let mut client = WireClient::new(addr, WireClientConfig::default()).expect("resolve addr");
    for k in 0..1000u32 {
        client.put(k, k * 7).expect("put over the wire");
    }
    assert_eq!(client.get(600).expect("get over the wire"), Some(4200));
    println!("1000 upserts over TCP; table holds {} keys", table.len());

    // --- Crash the server mid-service --------------------------------------
    // `abort()` is the deterministic stand-in for kill -9: connections are
    // torn down without a goodbye. Every call while the server is down
    // fails *typed* — a TransportError that names what went wrong — and
    // never hangs past its deadline.
    server.abort();
    broker.shutdown();
    let mut typed_failures = 0u32;
    for k in 0..3u32 {
        match client.get(k) {
            Err(e) => {
                typed_failures += 1;
                println!("while down: {e}");
            }
            Ok(v) => panic!("server is down; got {v:?}"),
        }
    }
    assert_eq!(typed_failures, 3);

    // --- Restart and carry on ----------------------------------------------
    // A new broker + server on the same address (same table: the data
    // outlives the transport). The existing client just works again.
    let (broker, server) = spawn_service(&table, &addr.to_string());
    let value = client.get(600).expect("get after restart");
    assert_eq!(value, Some(4200), "data survives the transport crash");
    let stats = client.stats();
    println!(
        "after restart: get(600) = {value:?}; client made {} requests, \
         {} transport errors, {} reconnects",
        stats.requests, stats.transport_errors, stats.reconnects
    );
    assert!(stats.reconnects >= 1, "the client must have redialed");

    // --- One scrape covers the whole pipeline -------------------------------
    // Transport metrics live on the broker's registry: socket accept/frame
    // counters next to queue depth and batch latency.
    let rendered = broker.metrics().render_prometheus();
    println!("-- transport metrics excerpt --");
    for line in rendered.lines() {
        if line.starts_with("slab_transport_connections")
            || line.starts_with("slab_transport_frames")
        {
            println!("{line}");
        }
    }

    drop(client);
    server.shutdown();
    broker.shutdown();
    println!("done: typed failures while down, transparent redial after restart");
}
