//! Quickstart: the slab hash in sixty lines.
//!
//! Builds a key–value table, performs individual and bulk operations, and
//! prints the memory-utilization statistics the paper's evaluation revolves
//! around.
//!
//! Run with: `cargo run --release --example quickstart`

use simt::Grid;
use slab_hash::{KeyValue, SlabHash, WarpDriver};

fn main() {
    // A table sized so that 100k elements land at the paper's sweet-spot
    // 60 % memory utilization.
    let n = 100_000usize;
    let table = SlabHash::<KeyValue>::for_expected_elements(n, 0.6, /* seed */ 42);
    println!(
        "created slab hash: {} buckets, layout key-value (15 pairs / 128 B slab)",
        table.num_buckets(),
    );

    // --- Individual operations through a driver warp -----------------------
    let mut warp = WarpDriver::new(&table);
    warp.replace(7, 700);
    warp.replace(8, 800);
    assert_eq!(warp.search(7), Some(700));
    assert_eq!(warp.replace(7, 701), Some(700)); // uniqueness: value swapped
    assert_eq!(warp.delete(8), Some(800));
    assert_eq!(warp.search(8), None);
    println!("single ops OK: search(7) = {:?}", warp.search(7));

    // --- Bulk build + bulk search, concurrently over all cores -------------
    let grid = Grid::default();
    let pairs: Vec<(u32, u32)> = (0..n as u32).map(|k| (k * 2 + 10, k)).collect();
    let report = table.bulk_build(&pairs, &grid);
    println!(
        "bulk build: {} inserts in {:?} ({} warps, {:.1} slab reads / op)",
        report.counters.ops,
        report.wall,
        report.warps,
        report.counters.slab_reads_per_op(),
    );

    let queries: Vec<u32> = pairs.iter().map(|p| p.0).collect();
    let (results, search_report) = table.bulk_search(&queries, &grid);
    assert!(results.iter().all(|r| r.is_some()));
    println!(
        "bulk search: {} hits in {:?}",
        results.len(),
        search_report.wall
    );

    // --- The statistics the paper reports -----------------------------------
    println!("elements stored:        {}", table.len());
    println!("total slabs:            {}", table.total_slabs());
    println!(
        "memory utilization:     {:.1} %",
        table.memory_utilization() * 100.0
    );
    println!("average slab count β:   {:.2}", table.beta());

    // Structural audit: chains intact, no leaked slabs.
    let audit = table.audit().expect("structural audit");
    assert!(audit.no_leaks());
    println!("audit OK: {audit:?}");
}
