//! Concurrent stream deduplication with the key-only slab hash.
//!
//! A classic dynamic-hash-table workload: a high-volume stream of items
//! with repeats, deduplicated on the fly by concurrent REPLACE operations
//! (key-only mode turns the table into an unordered set, the same
//! configuration as the paper's Misra comparison in §VI-C). The result of
//! each REPLACE tells the caller whether its element was new — no separate
//! membership query needed.
//!
//! Run with: `cargo run --release --example dedup_stream`

use std::collections::HashSet;

use simt::Grid;
use slab_hash::{KeyOnly, OpResult, Request, SlabHash};

/// A stream with a configurable duplication rate.
fn stream(n: usize, unique: u32, seed: u32) -> Vec<u32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x % unique
        })
        .collect()
}

fn main() {
    let grid = Grid::default();
    let items = stream(500_000, 60_000, 0x00DE_D00D);
    let table = SlabHash::<KeyOnly>::for_expected_elements(60_000, 0.6, 7);
    println!(
        "deduplicating {} items (≤ 60k distinct) over {} buckets, {} executor threads",
        items.len(),
        table.num_buckets(),
        grid.num_threads()
    );

    let mut new_items = 0usize;
    let mut duplicates = 0usize;
    let start = std::time::Instant::now();
    for chunk in items.chunks(32_768) {
        let mut batch: Vec<Request> = chunk.iter().map(|&k| Request::replace(k, 0)).collect();
        table.execute_batch(&mut batch, &grid);
        for req in &batch {
            match req.result {
                OpResult::Inserted => new_items += 1,
                OpResult::Replaced(_) => duplicates += 1,
                ref other => unreachable!("unexpected {other:?}"),
            }
        }
    }
    let elapsed = start.elapsed();
    println!(
        "dedup done in {elapsed:?}: {new_items} unique, {duplicates} duplicates \
         ({:.1} M items/s on the host simulation)",
        items.len() as f64 / elapsed.as_secs_f64() / 1e6
    );

    // Cross-check against the ground truth.
    let truth: HashSet<u32> = items.iter().copied().collect();
    assert_eq!(new_items, truth.len(), "unique count must match ground truth");
    assert_eq!(table.len(), truth.len());
    println!(
        "verified against std::HashSet: {} unique items, table utilization {:.1} %",
        truth.len(),
        table.memory_utilization() * 100.0
    );
}
