//! Dynamic graph analytics on the slab hash — the paper's motivating
//! application domain (§I cites cuSTINGER; §VII names "dynamic graph
//! analytics" as the target).
//!
//! The graph's adjacency is a *multimap*: key = vertex, one INSERTed
//! element per incident edge (duplicates allowed — that is exactly what the
//! slab list's INSERT/SEARCHALL/DELETEALL operations exist for). Edges
//! stream in concurrent batches; queries (degrees, triangle counts) run
//! against the live structure; vertex removals use DELETEALL; FLUSH
//! compacts the adjacency lists afterwards.
//!
//! Run with: `cargo run --release --example dynamic_graph`

use std::collections::HashSet;

use simt::Grid;
use slab_hash::{KeyValue, Request, SlabHash, WarpDriver};

/// Deterministic pseudorandom edge stream over `vertices` vertices.
fn edge_stream(vertices: u32, num_edges: usize, seed: u32) -> Vec<(u32, u32)> {
    let mut x = seed | 1;
    let mut edges = Vec::with_capacity(num_edges);
    while edges.len() < num_edges {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let u = x % vertices;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let v = x % vertices;
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

fn main() {
    let grid = Grid::default();
    let vertices = 2_000u32;
    let edges = edge_stream(vertices, 40_000, 0xF00D);

    // Size for both directions of every edge at a comfortable utilization.
    let graph = SlabHash::<KeyValue>::for_expected_elements(edges.len() * 2, 0.5, 99);
    println!(
        "dynamic graph: {vertices} vertices, {} streamed edges, {} buckets",
        edges.len(),
        graph.num_buckets()
    );

    // --- Phase 1: stream edges in concurrent batches ------------------------
    for chunk in edges.chunks(8_192) {
        let mut batch: Vec<Request> = chunk
            .iter()
            .flat_map(|&(u, v)| [Request::insert(u, v), Request::insert(v, u)])
            .collect();
        graph.execute_batch(&mut batch, &grid);
    }
    println!(
        "streamed {} directed adjacency entries; slabs in use: {}",
        graph.len(),
        graph.total_slabs()
    );

    // --- Phase 2: queries against the live structure ------------------------
    let mut warp = WarpDriver::new(&graph);
    let neighbors = |w: &mut WarpDriver<KeyValue>, v: u32| -> HashSet<u32> {
        w.search_all(v).into_iter().collect()
    };

    let mut max_degree = (0u32, 0usize);
    for v in 0..50 {
        let d = warp.search_all(v).len();
        if d > max_degree.1 {
            max_degree = (v, d);
        }
    }
    println!(
        "max degree among first 50 vertices: vertex {} with {} neighbors",
        max_degree.0, max_degree.1
    );

    // Streaming triangle counting: for a sample of edges (u, v), triangles
    // through that edge = |N(u) ∩ N(v)|.
    let mut triangles = 0usize;
    for &(u, v) in edges.iter().take(500) {
        let nu = neighbors(&mut warp, u);
        let nv = neighbors(&mut warp, v);
        triangles += nu.intersection(&nv).count();
    }
    println!("triangles through the first 500 edges: {triangles}");

    // --- Phase 3: vertex removal with DELETEALL -----------------------------
    let victims: Vec<u32> = (0..vertices).step_by(10).collect();
    let mut removed_entries = 0u32;
    for &v in &victims {
        removed_entries += warp.delete_all(v);
    }
    println!(
        "removed {} vertices ({} adjacency entries tombstoned)",
        victims.len(),
        removed_entries
    );

    // --- Phase 4: FLUSH compacts the tombstoned lists ------------------------
    let mut graph = graph; // exclusive phase: no concurrent ops possible now
    let before = graph.total_slabs();
    let report = graph.flush(&grid);
    println!(
        "flush: released {} of {} slabs, kept {} live entries",
        report.slabs_released,
        before,
        report.elements_kept
    );
    graph.audit().expect("graph structure intact after flush");

    // Deleted vertices are gone; survivors keep their adjacency.
    let mut warp = WarpDriver::new(&graph);
    assert!(warp.search_all(0).is_empty(), "vertex 0 was removed");
    assert!(
        !warp.search_all(1).is_empty(),
        "vertex 1 should still have neighbors"
    );
    println!("post-flush checks OK");
}
