//! Tour of the failure model: allocator exhaustion surfaced as a
//! structured error (with recovery), deterministic seeded fault
//! injection, bounded retries, and warp-panic containment.
//!
//! Run with `cargo run --release --example failure_model`.

use simt::{ChaosGuard, FaultPlan, Grid};
use slab_alloc::SerialHeapSim;
use slab_hash::{KeyValue, Request, SlabHash, SlabHashConfig, WarpDriver, EMPTY_KEY};

fn main() {
    // --- 1. Exhaustion is an error, not an abort -----------------------
    // One bucket over a 3-slab heap: 15 base + 45 chained pairs = 60 max.
    let table = SlabHash::<KeyValue, SerialHeapSim>::with_allocator(
        SlabHashConfig::with_buckets(1),
        SerialHeapSim::new(3, EMPTY_KEY),
    );
    let grid = Grid::sequential();
    let pairs: Vec<(u32, u32)> = (0..100).map(|k| (k, k + 1)).collect();
    let err = table.try_bulk_build(&pairs, &grid).unwrap_err();
    println!("bulk build of 100 pairs into a 60-pair table:");
    println!("  error: {err}");
    println!("  table kept {} elements, audit: {:?}", table.len(), table.audit().map(|a| a.no_leaks()));

    // Recovery without new slabs: a delete frees a slot that a
    // duplicate-allowing INSERT can reuse.
    let mut warp = WarpDriver::new(&table);
    assert!(warp.checked_insert(1_000, 1).is_err());
    warp.checked_delete(0).unwrap();
    warp.checked_insert(1_000, 1).unwrap();
    println!("  after delete(0): insert(1000) = {:?}", warp.search(1_000));

    // --- 2. Deterministic fault injection ------------------------------
    let run = |seed: u64| -> Vec<usize> {
        let _guard = ChaosGuard::plan(FaultPlan::seeded(seed).with_alloc_failures(0.4));
        let t = SlabHash::<KeyValue>::new(SlabHashConfig::with_buckets(1));
        let mut w = WarpDriver::new(&t);
        (0..200u32)
            .filter(|&k| w.checked_replace(k, k).is_err())
            .map(|k| k as usize)
            .collect()
    };
    let a = run(0xFEED_F00D);
    let b = run(0xFEED_F00D);
    let c = run(0x0DD_5EED);
    println!("\nfault plan p(alloc fail)=0.4, seed 0xFEED_F00D:");
    println!("  failed request indices (run 1): {a:?}");
    println!("  identical across reruns: {}", a == b);
    println!("  seed 0x0DD_5EED fails elsewhere: {}", a != c);

    // --- 3. A panicking warp is contained ------------------------------
    let table = SlabHash::<KeyValue>::new(SlabHashConfig::with_buckets(8));
    let grid = Grid::new(4);
    let mut reqs: Vec<Request> = (0..256).map(|k| Request::replace(k, k)).collect();
    reqs[100] = Request::replace(EMPTY_KEY, 0); // reserved key panics in-kernel
    let err = table.try_execute_batch(&mut reqs, &grid).unwrap_err();
    println!("\npoisoned batch: warp {} failed with {:?};", err.warp_id, err.message());
    println!("  {} of 8 warps completed, table still audits clean: {}",
        err.completed_warps,
        table.audit().unwrap().no_leaks());
}
