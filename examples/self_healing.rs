//! Self-healing under memory pressure: a churning table living
//! indefinitely on an allocator far too small for its cumulative demand.
//!
//! Three mechanisms cooperate (DESIGN.md §10):
//! 1. concurrent incremental compaction (`try_flush`) retires dead slabs
//!    behind an epoch grace period while traffic keeps running;
//! 2. the allocator's free-headroom watermark activates reserve super
//!    blocks *before* pressure turns into `OutOfSlabs`;
//! 3. a `MaintenancePolicy` turns residual failures into heal-and-retry
//!    (block) or heal-and-report (shed) at the collection-handle layer.
//!
//! Run with: `cargo run --release --example self_healing`

use simt::Grid;
use slab_alloc::{SlabAlloc, SlabAllocConfig, SlabAllocator};
use slab_hash::collections::SlabMap;
use slab_hash::{KeyValue, MaintenancePolicy, SlabHash, SlabHashConfig, EMPTY_KEY};

fn main() {
    // One active super block = 1024 slabs. The 50-cycle churn below chains
    // ~80 fresh slabs per cycle (~4000 total): without compaction the
    // allocator would exhaust by cycle ~13 even after growing to all four
    // super blocks.
    let alloc = SlabAlloc::new(SlabAllocConfig {
        super_blocks: 4,
        initial_active: 1,
        blocks_per_super: 1,
        fill: EMPTY_KEY,
        low_free_watermark: 128,
        ..SlabAllocConfig::default()
    });
    let table = SlabHash::<KeyValue, _>::with_allocator(
        SlabHashConfig {
            seed: 0x5E1F,
            ..SlabHashConfig::with_buckets(64)
        },
        alloc,
    );
    let grid = Grid::default();

    println!(
        "churning {} buckets on {} active super block(s) of 1024 slabs \
         (capacity {}; watermark 128)\n",
        table.num_buckets(),
        table.allocator().active_super_blocks(),
        table.allocator().capacity_slabs(),
    );
    println!("cycle  allocated   peak  retired  released  reclaimed  active-SB");

    // A pinned resident set that must survive every cycle of churn.
    let pinned: Vec<(u32, u32)> = (0..500).map(|i| (2_000_000 + i, i)).collect();
    table.bulk_build(&pinned, &grid);

    let mut total_released = 0u64;
    let mut total_reclaimed = 0u64;
    for cycle in 0..50u32 {
        // Insert a 2 000-key batch, then delete it: pure churn.
        let base = cycle * 10_000;
        let pairs: Vec<(u32, u32)> = (0..2_000).map(|k| (base + k, k)).collect();
        table.bulk_build(&pairs, &grid);
        let peak = table.allocator().allocated_slabs();
        let keys: Vec<u32> = pairs.iter().map(|p| p.0).collect();
        table.bulk_delete(&keys, &grid);

        // One idempotent maintenance pass: reclaim + compact + reclaim +
        // grow-if-low. In production this is a background thread; here it
        // rides the cycle boundary.
        let report = table.maintain(&grid);
        let released = report.flushed.map_or(0, |f| f.slabs_released);
        total_released += released;
        total_reclaimed += report.reclaimed;
        if cycle % 5 == 0 {
            println!(
                "{cycle:>5}  {:>9}  {peak:>5}  {:>7}  {released:>8}  {:>9}  {:>9}",
                table.allocator().allocated_slabs(),
                table.retired_slab_count(),
                report.reclaimed,
                table.allocator().active_super_blocks(),
            );
        }

        // The resident set must be untouched by 50 generations of churn.
        let (found, _) = table.bulk_search(
            &pinned.iter().map(|p| p.0).collect::<Vec<_>>(),
            &grid,
        );
        assert!(
            found.iter().all(|f| f.is_some()),
            "cycle {cycle}: compaction lost a pinned key"
        );
    }

    println!(
        "\n50 cycles: {total_released} slabs released, {total_reclaimed} reclaimed, \
         allocator never exceeded {} of {} slabs",
        table.allocator().peak_outstanding_slabs(),
        table.allocator().capacity_slabs(),
    );

    // --- Flash crowd: live demand outgrows the active super block -----------
    // ~1 270 chained slabs of *live* data cannot be compacted away; the
    // free-headroom gauge sinks through the watermark and the allocator
    // activates reserve super blocks before traffic sees `OutOfSlabs`.
    let crowd: Vec<(u32, u32)> = (0..20_000).map(|i| (3_000_000 + i, i)).collect();
    table.bulk_build(&crowd, &grid);
    println!(
        "\nflash crowd: +{} live keys -> {} slabs allocated, {} active super blocks, \
         {} watermark breaches",
        crowd.len(),
        table.allocator().allocated_slabs(),
        table.allocator().active_super_blocks(),
        table.allocator().low_free_breaches(),
    );
    assert!(
        table.allocator().active_super_blocks() > 1,
        "the watermark must have grown the allocator"
    );
    assert!(table.allocator().low_free_breaches() > 0);

    // The crowd leaves; churn maintenance shrinks the table back down.
    table.bulk_delete(&crowd.iter().map(|p| p.0).collect::<Vec<_>>(), &grid);
    let report = table.maintain(&grid);
    println!(
        "crowd gone: released {} slabs, reclaimed {}, {} still allocated",
        report.flushed.map_or(0, |f| f.slabs_released),
        report.reclaimed,
        table.allocator().allocated_slabs(),
    );

    for gauge in table.allocator().pressure_gauges() {
        println!("gauge {gauge}");
    }
    println!(
        "watermark breaches: {} (pressure was seen and acted on before OutOfSlabs)",
        table.allocator().low_free_breaches(),
    );

    let audit = table.audit().expect("audit after churn");
    println!(
        "audit: live {}, chained slabs {}, retired {}, frozen lanes {}, double frees {}, \
         no_leaks {}",
        audit.live_elements,
        audit.chained_slabs,
        audit.retired_slabs,
        audit.frozen_lanes,
        audit.double_frees,
        audit.no_leaks(),
    );
    assert_eq!(audit.live_elements, pinned.len() as u64);
    assert_eq!(audit.frozen_lanes, 0);
    assert!(audit.no_leaks());

    // --- Backpressure policies at the collection layer ----------------------
    // `handle_with_policy` heals transparently: block = compact/grow/retry,
    // shed = one heal pass, then the caller decides what to drop.
    let map = SlabMap::with_capacity(10_000);
    let mut writer = map.handle_with_policy(MaintenancePolicy::block());
    for k in 0..5_000 {
        writer
            .checked_insert(k, k * 2)
            .expect("block policy heals transient pressure");
    }
    let shedding = map.handle_with_policy(MaintenancePolicy::shed());
    println!(
        "\npolicy demo: {} keys through a blocking handle; shed handle ready ({:?})",
        map.len(),
        MaintenancePolicy::shed().mode,
    );
    drop(shedding);

    // Failed operations stay structured even when healing is exhausted: an
    // injected always-fail allocation plan makes the shed path surface
    // `OutOfSlabs` while the table stays consistent and auditable. One
    // bucket whose base slab is full forces every further insert to
    // allocate a chained slab.
    let tiny = SlabMap::with_buckets(1);
    {
        let mut h = tiny.handle();
        for k in 0..15 {
            h.insert(k, k);
        }
    }
    let chaos = simt::ChaosGuard::plan(
        simt::FaultPlan::seeded(0x5E1F).with_alloc_failures(1.0),
    );
    let mut shed = tiny.handle_with_policy(MaintenancePolicy::shed());
    let mut dropped = 0u32;
    for k in 100_000..100_064 {
        if shed.checked_insert(k, 0).is_err() {
            dropped += 1;
        }
    }
    drop(chaos);
    println!("under an always-fail alloc plan the shed handle dropped {dropped}/64 inserts");
    assert_eq!(dropped, 64, "every chained insert must shed under alloc faults");
    tiny.as_raw().audit().expect("map audits clean after shedding");

    println!("\nself-healing demo complete");
}
