//! Profiling tour of the telemetry layer: a Zipf-skewed update/search
//! workload traced end to end — per-warp event traces (exported as JSON
//! Lines and chrome://tracing), work-distribution histograms, a per-bucket
//! contention heatmap, and the roofline model's per-resource attribution.
//!
//! Run with: `cargo run --release --example profile [output-dir]`
//! (default output dir: `target/profile`). Load the written `trace.json`
//! at chrome://tracing or <https://ui.perfetto.dev>.
//!
//! Pass `--metrics <addr>` to serve the ingress epilogue's live metrics
//! plane as Prometheus text while it runs — then
//! `curl http://<addr>/metrics` for queue depth, shed totals, breaker
//! state, and the per-stage latency histograms.

use std::path::PathBuf;

use simt::{ChaosGuard, FaultPlan, GpuModel, PerfCounters};
use slab_hash::{KeyValue, Request, SlabHash, SlabHashConfig};
use telemetry::{Histograms, TraceConfig, TraceSession};

/// Keys drawn from a Zipf(s) distribution over `universe` distinct keys:
/// rank r is picked with probability ∝ 1/r^s. Inverse-CDF sampling over the
/// precomputed harmonic prefix sums, keyed by a fixed-seed xorshift stream,
/// so every run profiles the identical workload.
struct Zipf {
    cdf: Vec<f64>,
    state: u64,
}

impl Zipf {
    fn new(universe: usize, s: f64, seed: u64) -> Self {
        let mut cdf = Vec::with_capacity(universe);
        let mut acc = 0.0;
        for rank in 1..=universe {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Self { cdf, state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// The next key: the Zipf rank (hot keys are the low ranks).
    fn next_key(&mut self) -> u32 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u) as u32
    }
}

fn main() {
    // Positional output dir plus the opt-in `--metrics <addr>` flag.
    let mut out = PathBuf::from("target/profile");
    let mut metrics_addr: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--metrics" {
            metrics_addr = args.next();
        } else if !a.starts_with("--") {
            out = PathBuf::from(a);
        }
    }
    std::fs::create_dir_all(&out).expect("create output dir");

    // --- The workload: Zipf-skewed updates, then Zipf-skewed searches ------
    let universe = 10_000;
    let num_ops = 40_000;
    let mut zipf = Zipf::new(universe, 1.05, 0x5eed_cafe);
    let updates: Vec<Request> = (0..num_ops)
        .map(|i| Request::replace(zipf.next_key(), i as u32))
        .collect();
    let searches: Vec<Request> = (0..num_ops)
        .map(|_| Request::search(zipf.next_key()))
        .collect();

    // Deliberately under-bucketed (β ≈ 2.6): buckets chain 2–4 slabs deep,
    // so the trace exercises traversal, allocation, and link contention.
    let table = SlabHash::<KeyValue>::new(SlabHashConfig {
        seed: 0x9f0f,
        ..SlabHashConfig::with_buckets(256)
    });
    let grid = simt::Grid::default();
    let model = GpuModel::tesla_k40c();
    println!(
        "profiling slab hash: {} buckets, {num_ops} Zipf({}) updates + {num_ops} searches",
        table.num_buckets(),
        1.05,
    );

    // Light chaos keeps the contention paths honest: the profile must look
    // the same whether or not the scheduler is adversarial.
    let _chaos = ChaosGuard::plan(
        FaultPlan::seeded(0xC0FFEE)
            .with_yields(0.05)
            .with_cas_failures(0.02),
    );

    // --- Traced launches ---------------------------------------------------
    let session = TraceSession::begin(TraceConfig::default());
    let mut reqs = updates;
    let update_report = table.execute_batch(&mut reqs, &grid);
    let mut reqs = searches;
    let search_report = table.execute_batch(&mut reqs, &grid);
    let trace = session.finish();

    let mut counters = PerfCounters::default();
    counters.merge(&update_report.counters);
    counters.merge(&search_report.counters);
    let mut histograms = Histograms::default();
    histograms.merge(&update_report.histograms);
    histograms.merge(&search_report.histograms);

    println!(
        "\ncaptured {} trace events ({} dropped), {} retired ops, {} CAS failures",
        trace.events().len(),
        trace.dropped(),
        counters.ops,
        counters.cas_failures,
    );

    // --- Work-distribution histograms --------------------------------------
    println!("\n{}", histograms.rounds_per_op.render("warp rounds per op"));
    println!("{}", histograms.retries_per_op.render("CAS retries per op"));
    println!("{}", histograms.chain_slabs.render("chain slabs traversed per op"));
    println!(
        "{}",
        histograms.resident_hops.render("allocator resident-block hops")
    );

    // --- Contention heatmap -------------------------------------------------
    let audit = table.audit().expect("audit");
    let heatmap = table.contention_heatmap(&audit, Some(&trace));
    println!("\nhot buckets (score = cas_failures + tombstones + 16*(chain-1)):");
    println!("{}", heatmap.render_top_k(10));
    println!("bucket contention strip:\n{}", heatmap.render_strip(64));

    // --- Roofline attribution ----------------------------------------------
    let est = model.estimate(&counters, table.device_bytes());
    println!(
        "\nroofline ({}): modeled {:.3} ms, bound by {}",
        model.name,
        est.time_s * 1e3,
        est.bound
    );
    let mut pct_sum = 0.0;
    for (name, frac) in est.breakdown.fractions() {
        pct_sum += frac * 100.0;
        println!("  {name:<10} {:>5.1} %", frac * 100.0);
    }
    println!("  {:<10} {pct_sum:>5.1} %", "total");

    // --- Export + reconciliation -------------------------------------------
    let jsonl = out.join("trace.jsonl");
    let chrome = out.join("trace.json");
    trace.write_jsonl(&jsonl).expect("write jsonl");
    trace.write_chrome_trace(&chrome).expect("write chrome trace");
    println!("\nwrote {} and {}", jsonl.display(), chrome.display());

    println!(
        "reconciliation: trace ops {} == counter ops {}: {}",
        trace.op_count(),
        counters.ops,
        trace.op_count() == counters.ops
    );
    println!(
        "reconciliation: trace retries {} == counter CAS failures {}: {}",
        trace.retry_sum(),
        counters.cas_failures,
        trace.retry_sum() == counters.cas_failures
    );
    assert_eq!(trace.op_count(), counters.ops);
    assert_eq!(trace.retry_sum(), counters.cas_failures);

    // --- Memory-pressure epilogue -------------------------------------------
    // Runs after `session.finish()` on purpose: maintenance traffic must not
    // perturb the 2x40k-op trace reconciliation above. Delete the whole
    // working set, then let one maintenance pass compact the tombstoned
    // chains and surface the allocator's pressure gauges.
    let mut dels: Vec<Request> = (0..universe as u32).map(Request::delete).collect();
    table.execute_batch(&mut dels, &grid);
    let maint = table.maintain(&grid);
    println!(
        "\nmaintenance after full churn: released {} slabs, reclaimed {}, retired pending {}",
        maint.flushed.map_or(0, |f| f.slabs_released),
        maint.reclaimed,
        table.retired_slab_count(),
    );
    for gauge in table.allocator().pressure_gauges() {
        println!("  gauge {gauge}");
    }
    let audit = table.audit().expect("post-churn audit");
    println!(
        "post-churn audit: live {}, frozen lanes {}, retired {}, double frees {}",
        audit.live_elements, audit.frozen_lanes, audit.retired_slabs, audit.double_frees,
    );
    assert_eq!(audit.frozen_lanes, 0);
    assert_eq!(audit.double_frees, 0);
    assert!(audit.no_leaks(), "maintenance must account for every slab");

    // --- Ingress overload epilogue ------------------------------------------
    // Also after `session.finish()` on purpose (the broker would otherwise
    // emit ingress events into the reconciled trace). A deliberately
    // overloaded broker — a shed watermark nothing can satisfy — shows the
    // overload counters and the queue-depth histogram the ingress layer
    // bills: writes shed, the breaker trips, reads still complete.
    let service = std::sync::Arc::new(SlabHash::<KeyValue>::new(SlabHashConfig::with_buckets(64)));
    let mut broker = slab_ingress::Broker::spawn(
        std::sync::Arc::clone(&service),
        slab_ingress::BrokerConfig {
            write_shed_headroom: u64::MAX,
            ..slab_ingress::BrokerConfig::default()
        },
    );
    if let Some(addr) = &metrics_addr {
        broker = broker.with_metrics_addr(addr).expect("bind metrics exporter");
        let bound = broker.metrics_addr().expect("exporter bound");
        println!("\nmetrics exporter live: curl http://{bound}/metrics");
    }
    let client = broker.handle();
    for k in 0..512u32 {
        if k % 4 == 0 {
            let _ = client.call(Request::search(k));
        } else {
            let _ = client.call(Request::replace(k, k));
        }
    }
    drop(client);
    if let Some(addr) = broker.metrics_addr() {
        let body = simt::telemetry::scrape_text(addr).expect("self-scrape");
        println!("-- scrape excerpt of http://{addr}/metrics --");
        for line in body.lines().filter(|l| {
            l.starts_with("slab_ingress_shed_total")
                || l.starts_with("slab_ingress_breaker_state")
                || l.starts_with("slab_ingress_stage_seconds_count")
        }) {
            println!("{line}");
        }
    }
    let ingress = broker.shutdown();
    println!(
        "\ningress under forced overload: {} submitted, {} completed (reads), \
         {} shed, {} timed out, {} breaker trips",
        ingress.submitted,
        ingress.completed,
        ingress.shed(),
        ingress.timed_out(),
        ingress.breaker_trips(),
    );
    println!(
        "{}",
        ingress.histograms.queue_depth.render("submission queue depth at dispatch")
    );
    assert!(ingress.shed() > 0, "forced overload must shed writes");
    assert!(ingress.completed > 0, "reads must survive write shedding");
}
