//! Incremental ingestion vs rebuild-from-scratch — the Fig. 6 scenario as a
//! user-facing example.
//!
//! A service periodically receives batches of new key–value pairs. With a
//! static GPU hash table (CUDPP-style cuckoo hashing) every batch forces a
//! full rebuild over all data seen so far; the slab hash simply inserts the
//! new batch into the live structure. This example ingests the same stream
//! both ways and reports cumulative cost.
//!
//! Run with: `cargo run --release --example incremental`

use gpu_baselines::{CuckooConfig, CuckooHash};
use simt::{Grid, GpuModel, PerfCounters};
use slab_hash::{KeyValue, SlabHash};

fn main() {
    let grid = Grid::default();
    let model = GpuModel::tesla_k40c();
    let total = 400_000usize;
    let batch = 25_000usize;
    let pairs: Vec<(u32, u32)> = (0..total as u32).map(|k| (k * 3 + 1, k)).collect();

    println!("ingesting {total} pairs in batches of {batch}");
    println!("{:>10} {:>16} {:>16}", "elements", "slab Σsim(ms)", "cuckoo Σsim(ms)");

    let slab = SlabHash::<KeyValue>::for_expected_elements(total, 0.65, 3);
    let mut slab_counters = PerfCounters::default();
    let mut cuckoo_counters = PerfCounters::default();
    let mut ingested = 0usize;
    while ingested < total {
        let end = (ingested + batch).min(total);

        // Dynamic path: insert only the new batch.
        let report = slab.bulk_build(&pairs[ingested..end], &grid);
        slab_counters.merge(&report.counters);

        // Static path: rebuild the whole table from scratch.
        let mut cuckoo = CuckooHash::new(
            end,
            CuckooConfig {
                load_factor: 0.65,
                ..CuckooConfig::default()
            },
        );
        let (_, crep) = cuckoo
            .bulk_build(&pairs[..end], &grid)
            .expect("cuckoo build");
        cuckoo_counters.merge(&crep.counters);

        ingested = end;
        let t_slab = model.estimate(&slab_counters, slab.device_bytes()).time_s;
        let t_cuckoo = model
            .estimate(&cuckoo_counters, cuckoo.device_bytes())
            .time_s;
        println!(
            "{ingested:>10} {:>16.2} {:>16.2}",
            t_slab * 1e3,
            t_cuckoo * 1e3
        );
    }

    let t_slab = model.estimate(&slab_counters, slab.device_bytes()).time_s;
    let t_cuckoo = model.estimate(&cuckoo_counters, u64::MAX).time_s;
    println!(
        "\nfinal modeled speedup of incremental insertion over rebuilds: {:.1}x",
        t_cuckoo / t_slab
    );
    println!(
        "(the gap grows as batches shrink — the paper reports 6.4x/10.4x/17.3x for \
         128k/64k/32k batches at 2M elements)"
    );
    assert_eq!(slab.len(), total);
}
