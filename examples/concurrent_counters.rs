//! Concurrent frequency counting with lock-free read-modify-write.
//!
//! Uses the typed [`slab_hash::collections::SlabMap`] wrapper and its
//! `upsert` primitive — built from TRYINSERT + COMPAREEXCHANGE, which the
//! slab hash's 64-bit pair CAS makes exact (no lost increments) even with
//! many writers hammering the same hot keys.
//!
//! Run with: `cargo run --release --example concurrent_counters`

use std::collections::HashMap;

use slab_hash::collections::SlabMap;

/// A Zipf-ish skewed event stream: a few very hot keys, a long cold tail.
fn event_stream(n: usize, seed: u32) -> Vec<u32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            // 50 % of events hit one of 8 hot keys.
            if x & 1 == 0 {
                (x >> 1) % 8
            } else {
                8 + (x >> 1) % 50_000
            }
        })
        .collect()
}

fn main() {
    let events = event_stream(400_000, 0xC0DE);
    let map = SlabMap::with_capacity(60_000);
    let num_workers = 4;

    println!(
        "counting {} events ({} workers, lock-free upsert on shared hot keys)",
        events.len(),
        num_workers
    );
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for chunk in events.chunks(events.len() / num_workers + 1) {
            let map = &map;
            scope.spawn(move || {
                let mut h = map.handle();
                for &e in chunk {
                    h.upsert(e, |v| v.unwrap_or(0) + 1);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    println!(
        "done in {elapsed:?} ({:.1} M increments/s host-side)",
        events.len() as f64 / elapsed.as_secs_f64() / 1e6
    );

    // Verify against a sequential ground truth: exactness is the point.
    let mut truth: HashMap<u32, u32> = HashMap::new();
    for &e in &events {
        *truth.entry(e).or_insert(0) += 1;
    }
    let mut h = map.handle();
    for (&k, &count) in &truth {
        assert_eq!(h.get(k), Some(count), "count drift for key {k}");
    }
    assert_eq!(map.len(), truth.len());

    let mut hot: Vec<(u32, u32)> = (0..8).map(|k| (k, h.get(k).unwrap_or(0))).collect();
    hot.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("verified {} distinct keys against ground truth", truth.len());
    println!("hottest keys:");
    for (k, c) in hot.iter().take(4) {
        println!("  key {k:>3}: {c} events");
    }
}
