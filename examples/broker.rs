//! Quickstart for the ingress broker: the slab hash as a service.
//!
//! Spawns a broker over a table, drives it from several client threads,
//! then deliberately overloads it to show the graceful-degradation
//! machinery: bounded queues, per-request deadlines, memory-pressure write
//! shedding, and the circuit breaker — every refusal a typed reply, never a
//! hang.
//!
//! Run with: `cargo run --release --example broker`
//!
//! Pass `--metrics <addr>` (e.g. `--metrics 127.0.0.1:9184`) to serve the
//! overloaded broker's live metrics plane as Prometheus text — then
//! `curl http://<addr>/metrics` while it runs. `--hold-ms <ms>` keeps the
//! overloaded broker (and its exporter) alive that long before shutdown so
//! an external scraper has a window.

use std::sync::Arc;
use std::time::Duration;

use slab_hash::{KeyValue, MaintenancePolicy, Request, SlabHash, SlabHashConfig};
use slab_ingress::{Broker, BrokerConfig, IngressError};

/// Minimal flag scan (the examples avoid depending on the bench crate's
/// parser): returns the value following `--<name>`, if any.
fn arg_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == format!("--{name}") {
            return args.next();
        }
    }
    None
}

fn main() {
    // --- Normal service ----------------------------------------------------
    let table = Arc::new(SlabHash::<KeyValue>::new(SlabHashConfig::with_buckets(1024)));
    let broker = Broker::spawn(Arc::clone(&table), BrokerConfig::default());

    // Handles are cheap clones; each thread gets its own.
    let writers: Vec<_> = (0..4u32)
        .map(|t| {
            let client = broker.handle();
            std::thread::spawn(move || {
                for i in 0..1000u32 {
                    let key = t * 1000 + i;
                    client.put(key, key * 3).expect("write in normal service");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }

    let client = broker.handle();
    assert_eq!(client.get(2500).unwrap(), Some(7500));
    println!("4 threads x 1000 upserts landed; table holds {} keys", table.len());

    // Per-request deadlines: an impossible budget fails fast with a typed
    // timeout, and the write is guaranteed never to have been applied.
    let err = client
        .call_with_deadline(Request::replace(9999, 1), Duration::ZERO)
        .unwrap_err();
    assert!(err.is_timeout());
    println!("zero-budget request answered with: {err}");

    drop(client);
    let stats = broker.shutdown();
    println!(
        "service stats: {} submitted, {} completed over {} batches;\n{}",
        stats.submitted,
        stats.completed,
        stats.batches,
        stats.histograms.queue_depth.render("queue depth at dispatch"),
    );

    // --- Forced overload ---------------------------------------------------
    // A shed watermark nothing satisfies simulates an allocator that cannot
    // keep up: the broker sheds writes (typed, immediately), keeps serving
    // reads, and trips the breaker once the failure rate is sustained.
    let mut overloaded = Broker::spawn(
        Arc::clone(&table),
        BrokerConfig {
            write_shed_headroom: u64::MAX,
            policy: MaintenancePolicy::shed(),
            ..BrokerConfig::default()
        },
    );
    // Opt in to the live metrics plane: Prometheus text on GET /metrics.
    if let Some(addr) = arg_value("metrics") {
        overloaded = overloaded
            .with_metrics_addr(&addr)
            .expect("bind metrics exporter");
        let bound = overloaded.metrics_addr().expect("exporter bound");
        println!("metrics exporter live: curl http://{bound}/metrics");
    }
    let client = overloaded.handle();
    let (mut shed, mut breaker_open, mut reads_ok) = (0u32, 0u32, 0u32);
    for k in 0..256u32 {
        match client.call(Request::replace(k, 0)) {
            Err(IngressError::ShedWrite) => shed += 1,
            Err(IngressError::BreakerOpen) => breaker_open += 1,
            other => panic!("write under forced pressure: {other:?}"),
        }
        if client.get(k).unwrap() == Some(k * 3) {
            reads_ok += 1;
        }
    }
    println!(
        "forced overload: {shed} writes shed, {breaker_open} refused by the open breaker, \
         {reads_ok}/256 reads still served"
    );
    assert_eq!(reads_ok, 256, "reads must keep flowing while writes shed");

    drop(client);

    // With the exporter up, show a scrape of the overload in progress —
    // the same text `curl` would fetch.
    if let Some(addr) = overloaded.metrics_addr() {
        let body = simt::telemetry::scrape_text(addr).expect("self-scrape");
        let interesting = ["slab_ingress_queue_depth", "slab_ingress_shed_total",
            "slab_ingress_breaker_state", "slab_ingress_breaker_open_total"];
        println!("-- scrape of http://{addr}/metrics --");
        for line in body.lines() {
            if interesting.iter().any(|m| line.starts_with(m)) {
                println!("{line}");
            }
        }
        let hold: u64 = arg_value("hold-ms").and_then(|v| v.parse().ok()).unwrap_or(0);
        if hold > 0 {
            println!("holding exporter open for {hold} ms...");
            std::thread::sleep(Duration::from_millis(hold));
        }
    }

    let stats = overloaded.shutdown();
    println!(
        "overload stats: {} shed, {} breaker trips — and the table is untouched: {} keys",
        stats.shed(),
        stats.breaker_trips(),
        table.len(),
    );
}
