//! Root crate re-exporting the workspace public API for examples/tests.
pub use gpu_baselines as baselines;
pub use simt;
pub use slab_alloc;
pub use slab_hash;
